package sparse

import (
	"fmt"

	"ndsnn/internal/tensor"
)

// Thread-scalable event kernels. The serial kernels in event.go were
// single-threaded by design ("the conv layers already parallelize across the
// batch"), which leaves an ~NumCPU× factor on the table whenever the batch
// dimension is narrower than the host — small-batch training, timestep-fused
// calls, and single-sample inference. The kernels here parallelize *inside*
// one call while keeping the serial kernels' exact summation order:
//
//   - Scatter-style kernels (CSC event matmul) are parallelized by
//     pre-bucketing the weight matrix into disjoint destination row bands
//     (CSCBands). Every worker streams the same spike events in the same
//     ascending order but only accumulates the synapses landing in its band,
//     so each output element receives its contributions in exactly the serial
//     kernel's order — results are bit-identical to the serial (and dense)
//     path, independent of GOMAXPROCS and of the band count.
//   - Gather-style kernels (the SDDMM weight gradients) are parallelized over
//     contiguous row blocks of the pattern, balanced by stored-entry count.
//     Each vals[p] is computed by exactly one worker with the serial
//     arithmetic, so these too are bit-identical to their serial kernels.
//
// Workers is the single knob gating every parallel path.

// Workers is the kernel-parallelism knob: the number of strips the parallel
// event kernels split their work into. 0 (the default) and 1 preserve the
// serial kernels exactly — the configuration tests pin bit-identical serial
// order against. Values > 1 engage the banded/blocked parallel kernels; the
// results remain bit-identical to serial for the forward kernels and for the
// SDDMM gradients (each stored position is computed by one worker in serial
// order), so the knob trades nothing but determinism *of scheduling*, never
// of results. Typical setting: runtime.GOMAXPROCS(0). Not intended to be
// changed while kernels are in flight.
var Workers = 0

// EffectiveWorkers clamps the Workers knob to [1, n]: kernels call it with
// their natural strip-count ceiling (number of bands, pattern rows, …).
func EffectiveWorkers(n int) int {
	w := Workers
	if w < 1 {
		w = 1
	}
	if w > n {
		w = n
	}
	return w
}

// CSCBands is a compressed-sparse-column weight matrix pre-bucketed into
// disjoint destination row bands: Bands[b] holds exactly the stored synapses
// whose row index falls in [RowLo[b], RowLo[b+1]), with absolute row indices.
// Running the serial CSC event kernel once per band — all bands over the
// same events, concurrently — writes disjoint destination rows and visits
// each output element's contributions in the serial order, which is how
// CSCMatMulEventsInto parallelizes scatter without giving up bit-exactness.
// Band boundaries are balanced by stored-synapse count so skewed row
// occupancy does not serialize the call.
type CSCBands struct {
	Rows, Cols int
	// RowLo has len(Bands)+1 entries: band b owns rows [RowLo[b], RowLo[b+1]).
	RowLo []int32
	Bands []*CSC
}

// NewCSCBands buckets a CSR-encoded weight matrix into `bands` row bands of
// approximately equal stored-synapse count (boundaries from the CSR's row
// pointer, which is already the nnz prefix sum) and builds a CSC per band.
// With bands <= 1 the result is the whole matrix as one band, sharing the
// plain NewCSCFromCSR layout. The build is O(nnz + rows + bands·cols), paid
// once per mask topology; refresh values with GatherValues between optimizer
// steps like the flat CSC.
func NewCSCBands(c *CSR, bands int) *CSCBands {
	if bands < 1 {
		bands = 1
	}
	if bands > c.Rows && c.Rows > 0 {
		bands = c.Rows
	}
	bounds := nnzRowBlocks(c.RowPtr, c.Rows, bands)
	out := &CSCBands{Rows: c.Rows, Cols: c.Cols, RowLo: bounds}
	for b := 0; b+1 < len(bounds); b++ {
		out.Bands = append(out.Bands, cscFromCSRRows(c, int(bounds[b]), int(bounds[b+1])))
	}
	return out
}

// NNZ returns the number of stored synapses across all bands.
func (t *CSCBands) NNZ() int {
	n := 0
	for _, b := range t.Bands {
		n += b.NNZ()
	}
	return n
}

// GatherValues refreshes every band's values in place from a dense tensor
// with Rows·Cols elements, keeping the patterns fixed — the banded
// counterpart of CSC.GatherValues. Bands refresh concurrently (their value
// arrays are disjoint).
func (t *CSCBands) GatherValues(w *tensor.Tensor) {
	if w.Size() != t.Rows*t.Cols {
		panic("sparse: CSCBands.GatherValues size mismatch")
	}
	tensor.ParallelStrips(len(t.Bands), func(b int) {
		t.Bands[b].GatherValues(w)
	})
}

// cscFromCSRRows builds a CSC holding only the CSR's rows [rlo, rhi), with
// absolute row indices (so kernels index the full destination directly).
func cscFromCSRRows(c *CSR, rlo, rhi int) *CSC {
	nnz := int(c.RowPtr[rhi] - c.RowPtr[rlo])
	t := &CSC{
		Rows: c.Rows, Cols: c.Cols,
		ColPtr: make([]int32, c.Cols+1),
		RowIdx: make([]int32, nnz),
		Val:    make([]float32, nnz),
	}
	for p := c.RowPtr[rlo]; p < c.RowPtr[rhi]; p++ {
		t.ColPtr[c.ColIdx[p]+1]++
	}
	for q := 0; q < c.Cols; q++ {
		t.ColPtr[q+1] += t.ColPtr[q]
	}
	next := make([]int32, c.Cols)
	copy(next, t.ColPtr[:c.Cols])
	for r := rlo; r < rhi; r++ {
		for p := c.RowPtr[r]; p < c.RowPtr[r+1]; p++ {
			q := c.ColIdx[p]
			t.RowIdx[next[q]] = int32(r)
			t.Val[next[q]] = c.Val[p]
			next[q]++
		}
	}
	return t
}

// nnzRowBlocks partitions rows [0, rows) into `blocks` contiguous blocks of
// approximately equal stored-entry count using the CSR row-pointer prefix
// sums. It returns blocks+1 ascending boundaries (some blocks may be empty
// on degenerate distributions). Boundaries depend only on the pattern and
// the block count — never on scheduling — which is what makes every kernel
// built on this partition deterministic.
func nnzRowBlocks(rowPtr []int32, rows, blocks int) []int32 {
	if blocks < 1 {
		blocks = 1
	}
	bounds := make([]int32, blocks+1)
	bounds[blocks] = int32(rows)
	nnz := int64(rowPtr[rows])
	r := 0
	for b := 1; b < blocks; b++ {
		// Targets in int64: nnz·b wraps int32 past ~2^31/blocks stored
		// entries, which would silently collapse the balancing.
		target := int32(nnz * int64(b) / int64(blocks))
		for r < rows && rowPtr[r] < target {
			r++
		}
		bounds[b] = int32(r)
	}
	return bounds
}

// CSCMatMulEventsInto computes dst = A·B for A as a row-banded CSC and a
// binary B given as its event pattern — the parallel form of
// CSCMatMulEventsSerialInto. Each band streams the full event list into its
// private destination row band concurrently, so for every output element the
// contributions arrive in the serial kernel's ascending spike-row order:
// outputs are bit-identical to the serial (and dense) path at any band count
// and any GOMAXPROCS. Work per call is unchanged except for ~bands× extra
// event-row pointer reads, which amortize over each column's stored weights.
func CSCMatMulEventsInto(dst *tensor.Tensor, a *CSCBands, ev *Events, accumulate bool) {
	if ev.Rows != a.Cols {
		panic(fmt.Sprintf("sparse: CSCMatMulEvents inner dims %d vs %d", a.Cols, ev.Rows))
	}
	dm, dn := dims2(dst, "CSCMatMulEvents dst")
	if dm != a.Rows || dn != ev.Cols {
		panic(fmt.Sprintf("sparse: CSCMatMulEvents dst shape [%d,%d], want [%d,%d]", dm, dn, a.Rows, ev.Cols))
	}
	n := ev.Cols
	od := dst.Data
	tensor.ParallelStrips(len(a.Bands), func(b int) {
		if !accumulate {
			band := od[int(a.RowLo[b])*n : int(a.RowLo[b+1])*n]
			for i := range band {
				band[i] = 0
			}
		}
		cscMatMulEventsBand(od, a.Bands[b], ev, n)
	})
}

// cscMatMulEventsBand is the shared inner loop of the serial and banded
// float event kernels: ascending spike rows outer, each stored weight
// column streamed once per active spike row, unrolled event accumulate.
func cscMatMulEventsBand(od []float32, a *CSC, ev *Events, n int) {
	for q := 0; q < ev.Rows; q++ {
		evRow := ev.ColIdx[ev.RowPtr[q]:ev.RowPtr[q+1]]
		if len(evRow) == 0 {
			continue
		}
		for p := a.ColPtr[q]; p < a.ColPtr[q+1]; p++ {
			v := a.Val[p]
			if v == 0 {
				continue
			}
			orow := od[int(a.RowIdx[p])*n:]
			addEventsUnrolled(orow[:n], v, evRow)
		}
	}
}

// MatMulEventsCSCBandsInto computes dst = X·Aᵀ for a binary X given as its
// event pattern and A as a row-banded CSC — the parallel form of
// MatMulEventsCSCInto for batches too narrow to saturate the host (the
// linear layer's usual situation once conv batch workers own the cores).
// Workers own output-feature bands instead of sample rows: band b scatters
// every sample's events through its private synapse bucket into
// dst[:, RowLo[b]:RowLo[b+1]], visiting contributions in the serial event
// order, so outputs are bit-identical to the serial path.
func MatMulEventsCSCBandsInto(dst *tensor.Tensor, ev *Events, a *CSCBands, accumulate bool) {
	if ev.Cols != a.Cols {
		panic(fmt.Sprintf("sparse: MatMulEventsCSCBands inner dims %d vs %d", ev.Cols, a.Cols))
	}
	dm, dn := dims2(dst, "MatMulEventsCSCBands dst")
	if dm != ev.Rows || dn != a.Rows {
		panic(fmt.Sprintf("sparse: MatMulEventsCSCBands dst shape [%d,%d], want [%d,%d]", dm, dn, ev.Rows, a.Rows))
	}
	od := dst.Data
	tensor.ParallelStrips(len(a.Bands), func(b int) {
		band := a.Bands[b]
		blo, bhi := int(a.RowLo[b]), int(a.RowLo[b+1])
		for i := 0; i < ev.Rows; i++ {
			orow := od[i*a.Rows : (i+1)*a.Rows]
			if !accumulate {
				seg := orow[blo:bhi]
				for j := range seg {
					seg[j] = 0
				}
			}
			for e := ev.RowPtr[i]; e < ev.RowPtr[i+1]; e++ {
				q := ev.ColIdx[e]
				for p := band.ColPtr[q]; p < band.ColPtr[q+1]; p++ {
					orow[band.RowIdx[p]] += band.Val[p]
				}
			}
		}
	})
}

// CSRGradABTEventsInto is CSRGradABTEventsSerial parallelized over contiguous
// row blocks of the pattern, balanced by stored-entry count. vals[p] is
// written by exactly one worker using the serial per-position arithmetic
// (ascending recorded-event order), so the accumulated gradients are
// bit-identical to the serial kernel at any worker count. workers <= 1
// degenerates to the serial kernel on the calling goroutine.
func CSRGradABTEventsInto(vals []float32, pattern *CSR, a *tensor.Tensor, evB *Events, workers int) {
	am, q := dims2(a, "CSRGradABTEvents a")
	if am != pattern.Rows {
		panic(fmt.Sprintf("sparse: CSRGradABTEvents a rows %d vs pattern rows %d", am, pattern.Rows))
	}
	if evB.Rows != pattern.Cols || evB.Cols != q {
		panic(fmt.Sprintf("sparse: CSRGradABTEvents events [%d,%d] vs pattern cols %d, q %d", evB.Rows, evB.Cols, pattern.Cols, q))
	}
	if len(vals) != pattern.NNZ() {
		panic(fmt.Sprintf("sparse: CSRGradABTEvents vals length %d, want %d", len(vals), pattern.NNZ()))
	}
	if workers > pattern.Rows {
		workers = pattern.Rows
	}
	if workers <= 1 {
		csrGradABTEventsRows(vals, pattern, a.Data, q, evB, 0, pattern.Rows)
		return
	}
	bounds := nnzRowBlocks(pattern.RowPtr, pattern.Rows, workers)
	tensor.ParallelStrips(workers, func(b int) {
		csrGradABTEventsRows(vals, pattern, a.Data, q, evB, int(bounds[b]), int(bounds[b+1]))
	})
}

func csrGradABTEventsRows(vals []float32, pattern *CSR, ad []float32, q int, evB *Events, rlo, rhi int) {
	for r := rlo; r < rhi; r++ {
		arow := ad[r*q : (r+1)*q]
		for p := pattern.RowPtr[r]; p < pattern.RowPtr[r+1]; p++ {
			c := int(pattern.ColIdx[p])
			lo, hi := evB.RowPtr[c], evB.RowPtr[c+1]
			if lo == hi {
				continue
			}
			var s float32
			for _, j := range evB.ColIdx[lo:hi] {
				s += arow[j]
			}
			vals[p] += s
		}
	}
}

// CSRGradABTInto is CSRGradABTSerial (the dense-operand SDDMM) parallelized
// over contiguous nnz-balanced row blocks of the pattern, with the same
// one-worker-per-position bit-exactness argument as CSRGradABTEventsInto.
// workers <= 1 degenerates to the serial kernel.
func CSRGradABTInto(vals []float32, pattern *CSR, a, b *tensor.Tensor, workers int) {
	q := checkCSRGrad(vals, pattern, a, b, pattern.Rows, pattern.Cols)
	if workers > pattern.Rows {
		workers = pattern.Rows
	}
	if workers <= 1 {
		csrGradABTRows(vals, pattern, a.Data, b.Data, q, 0, pattern.Rows)
		return
	}
	bounds := nnzRowBlocks(pattern.RowPtr, pattern.Rows, workers)
	tensor.ParallelStrips(workers, func(blk int) {
		csrGradABTRows(vals, pattern, a.Data, b.Data, q, int(bounds[blk]), int(bounds[blk+1]))
	})
}

func csrGradABTRows(vals []float32, pattern *CSR, ad, bd []float32, q, rlo, rhi int) {
	for r := rlo; r < rhi; r++ {
		arow := ad[r*q : (r+1)*q]
		for p := pattern.RowPtr[r]; p < pattern.RowPtr[r+1]; p++ {
			brow := bd[int(pattern.ColIdx[p])*q:]
			brow = brow[:q]
			var s float32
			for j, av := range arow {
				s += av * brow[j]
			}
			vals[p] += s
		}
	}
}
