package sparse

import (
	"runtime"
	"testing"

	"ndsnn/internal/rng"
	"ndsnn/internal/tensor"
)

// Tests for the thread-scalable kernel layer: every parallel kernel is
// pinned against the serial kernel it parallelizes — bit-identical for the
// banded forward scatters and the row-blocked SDDMMs, exact for the integer
// accumulates — swept across GOMAXPROCS, worker counts and spike rates. The
// sweeps double as -race coverage of every parallel code path.

var testGOMAXPROCS = []int{1, 2, 8}

// withGOMAXPROCS runs fn under each swept GOMAXPROCS, restoring the original
// value afterwards.
func withGOMAXPROCS(t *testing.T, fn func(procs int)) {
	t.Helper()
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	for _, procs := range testGOMAXPROCS {
		runtime.GOMAXPROCS(procs)
		fn(procs)
	}
}

// setWorkers sets the kernel-parallelism knob for the test's duration.
func setWorkers(t *testing.T, w int) {
	t.Helper()
	old := Workers
	Workers = w
	t.Cleanup(func() { Workers = old })
}

func TestNNZRowBlocksPartition(t *testing.T) {
	r := rng.New(601)
	_, c := maskedWeights(37, 53, 0.2, r)
	for _, blocks := range []int{1, 2, 3, 8, 37} {
		bounds := nnzRowBlocks(c.RowPtr, c.Rows, blocks)
		if len(bounds) != blocks+1 {
			t.Fatalf("blocks=%d: %d boundaries", blocks, len(bounds))
		}
		if bounds[0] != 0 || bounds[blocks] != int32(c.Rows) {
			t.Fatalf("blocks=%d: bounds %v do not span rows", blocks, bounds)
		}
		for b := 0; b < blocks; b++ {
			if bounds[b] > bounds[b+1] {
				t.Fatalf("blocks=%d: non-monotone bounds %v", blocks, bounds)
			}
		}
	}
}

func TestCSCBandsCoverMatrix(t *testing.T) {
	r := rng.New(607)
	w, c := maskedWeights(29, 31, 0.3, r)
	for _, bands := range []int{1, 2, 4, 29} {
		bb := NewCSCBands(c, bands)
		if bb.NNZ() != c.NNZ() {
			t.Fatalf("bands=%d: nnz %d, want %d", bands, bb.NNZ(), c.NNZ())
		}
		// Every stored entry must fall inside its band's row range.
		for b, band := range bb.Bands {
			for _, ri := range band.RowIdx {
				if ri < bb.RowLo[b] || ri >= bb.RowLo[b+1] {
					t.Fatalf("bands=%d: row %d escaped band %d [%d,%d)", bands, ri, b, bb.RowLo[b], bb.RowLo[b+1])
				}
			}
		}
		// GatherValues refreshes after a weight change.
		w.Data[0] += 1 // (0,0) may or may not be stored; gather is global either way
		bb.GatherValues(w)
		flat := NewCSCFromCSR(c)
		flat.GatherValues(w)
		for _, band := range bb.Bands {
			for q := 0; q < band.Cols; q++ {
				for p := band.ColPtr[q]; p < band.ColPtr[q+1]; p++ {
					want := w.Data[int(band.RowIdx[p])*band.Cols+q]
					if band.Val[p] != want {
						t.Fatalf("bands=%d: stale value at row %d col %d", bands, band.RowIdx[p], q)
					}
				}
			}
		}
	}
}

func TestCSCMatMulEventsParallelBitIdentical(t *testing.T) {
	const m, k, n = 33, 47, 24
	withGOMAXPROCS(t, func(procs int) {
		for _, workers := range []int{2, 3, 8} {
			for _, rate := range spikeRates {
				r := rng.New(613 + uint64(workers*100) + uint64(rate*10))
				_, c := maskedWeights(m, k, 0.25, r)
				csc := NewCSCFromCSR(c)
				bands := NewCSCBands(c, workers)
				ev, ok := EncodeEvents(spikeMatrix(k, n, rate, r))
				if !ok {
					t.Fatal("binary operand rejected")
				}
				want := tensor.New(m, n)
				CSCMatMulEventsSerialInto(want, csc, ev, false)
				got := tensor.New(m, n)
				CSCMatMulEventsInto(got, bands, ev, false)
				for i := range want.Data {
					if want.Data[i] != got.Data[i] {
						t.Fatalf("procs=%d workers=%d rate=%v: banded kernel not bit-identical at %d (%v vs %v)",
							procs, workers, rate, i, got.Data[i], want.Data[i])
					}
				}
				// Accumulate mode adds on top of prior contents like the serial kernel.
				CSCMatMulEventsSerialInto(want, csc, ev, true)
				CSCMatMulEventsInto(got, bands, ev, true)
				if d := maxAbsDiffT(want, got); d != 0 {
					t.Fatalf("procs=%d workers=%d rate=%v: accumulate differs by %v", procs, workers, rate, d)
				}
			}
		}
	})
}

func TestMatMulEventsCSCBandsBitIdentical(t *testing.T) {
	const b, k, m = 7, 40, 21
	withGOMAXPROCS(t, func(procs int) {
		for _, workers := range []int{2, 4, 8} {
			for _, rate := range spikeRates {
				r := rng.New(617 + uint64(workers*100) + uint64(rate*10))
				_, c := maskedWeights(m, k, 0.3, r)
				csc := NewCSCFromCSR(c)
				bands := NewCSCBands(c, workers)
				ev, ok := EncodeEvents(spikeMatrix(b, k, rate, r))
				if !ok {
					t.Fatal("binary operand rejected")
				}
				want := tensor.New(b, m)
				MatMulEventsCSCInto(want, ev, csc, false)
				got := tensor.New(b, m)
				MatMulEventsCSCBandsInto(got, ev, bands, false)
				for i := range want.Data {
					if want.Data[i] != got.Data[i] {
						t.Fatalf("procs=%d workers=%d rate=%v: banded linear kernel not bit-identical at %d", procs, workers, rate, i)
					}
				}
			}
		}
	})
}

func TestCSRGradABTEventsParallelMatchesSerial(t *testing.T) {
	const m, k, q = 19, 33, 24
	withGOMAXPROCS(t, func(procs int) {
		for _, workers := range []int{1, 2, 8} {
			for _, rate := range spikeRates {
				r := rng.New(619 + uint64(workers*100) + uint64(rate*10))
				_, c := maskedWeights(m, k, 0.3, r)
				dy := tensor.New(m, q)
				for i := range dy.Data {
					dy.Data[i] = r.NormFloat32()
				}
				ev, ok := EncodeEvents(spikeMatrix(k, q, rate, r))
				if !ok {
					t.Fatal("binary operand rejected")
				}
				want := make([]float32, c.NNZ())
				CSRGradABTEventsSerial(want, c, dy, ev)
				got := make([]float32, c.NNZ())
				CSRGradABTEventsInto(got, c, dy, ev, workers)
				if d := maxAbsDiff(want, got); d != 0 {
					t.Fatalf("procs=%d workers=%d rate=%v: parallel events SDDMM differs by %v", procs, workers, rate, d)
				}
			}
		}
	})
}

func TestCSRGradABTParallelMatchesSerial(t *testing.T) {
	const m, k, q = 17, 29, 21
	withGOMAXPROCS(t, func(procs int) {
		for _, workers := range []int{2, 8} {
			r := rng.New(631 + uint64(workers))
			_, c := maskedWeights(m, k, 0.35, r)
			dy := tensor.New(m, q)
			col := tensor.New(k, q)
			for i := range dy.Data {
				dy.Data[i] = r.NormFloat32()
			}
			for i := range col.Data {
				col.Data[i] = r.NormFloat32()
			}
			want := make([]float32, c.NNZ())
			CSRGradABTSerial(want, c, dy, col)
			got := make([]float32, c.NNZ())
			CSRGradABTInto(got, c, dy, col, workers)
			if d := maxAbsDiff(want, got); d != 0 {
				t.Fatalf("procs=%d workers=%d: parallel dense SDDMM differs by %v", procs, workers, d)
			}
		}
	})
}

func TestStackTimesteps(t *testing.T) {
	r := rng.New(641)
	const rows, cols, T = 5, 11, 3
	evs := make([]*Events, T)
	mats := make([]*tensor.Tensor, T)
	for t2 := 0; t2 < T; t2++ {
		mats[t2] = spikeMatrix(rows, cols, 0.3, r)
		evs[t2], _ = EncodeEvents(mats[t2])
	}
	s := StackTimesteps(evs)
	if s.Rows != T*rows || s.Cols != cols {
		t.Fatalf("stacked shape [%d,%d], want [%d,%d]", s.Rows, s.Cols, T*rows, cols)
	}
	// Row t·rows+i of the stack must decode to timestep t's sample i.
	buf := make([]float32, cols)
	for t2 := 0; t2 < T; t2++ {
		for i := 0; i < rows; i++ {
			for j := range buf {
				buf[j] = 0
			}
			s.ScatterRowInto(t2*rows+i, buf, 1)
			for j := 0; j < cols; j++ {
				if buf[j] != mats[t2].Data[i*cols+j] {
					t.Fatalf("stacked row %d col %d = %v, want %v", t2*rows+i, j, buf[j], mats[t2].Data[i*cols+j])
				}
			}
		}
	}
	// Edge cases: T=1 reproduces the input; empty input yields an empty pattern.
	one := StackTimesteps(evs[:1])
	if one.NNZ() != evs[0].NNZ() || one.Rows != rows {
		t.Fatalf("T=1 stack changed the pattern")
	}
	empty := StackTimesteps(nil)
	if empty.NNZ() != 0 {
		t.Fatalf("empty stack has events")
	}
}

func TestInt8AccumulateUnrolledMatchesScalar(t *testing.T) {
	r := rng.New(653)
	qc := randomCSCInt8(37, 41, 0.3, r)
	for _, rate := range spikeRates {
		cols := eventColumns(41, rate, r)
		// Duplicate columns exercise repeated accumulation into the same rows.
		cols = append(cols, cols...)
		want := make([]int32, qc.Rows)
		wops := CSCAccumulateColumnsInt8Scalar(want, qc, cols)
		got := make([]int32, qc.Rows)
		gops := CSCAccumulateColumnsInt8(got, qc, cols)
		if wops != gops {
			t.Fatalf("rate %v: ops %d vs %d", rate, gops, wops)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("rate %v: unrolled int8 accumulate differs at %d: %d vs %d", rate, i, got[i], want[i])
			}
		}
	}
}

func TestInt4AccumulateUnrolledMatchesScalar(t *testing.T) {
	r := rng.New(659)
	q8 := randomCSCInt8(23, 29, 0.4, r)
	qc := int4FromInt8(q8)
	for _, rate := range spikeRates {
		cols := eventColumns(29, rate, r)
		want := make([]int32, qc.Rows)
		wops := CSCAccumulateColumnsInt4Scalar(want, qc, cols)
		got := make([]int32, qc.Rows)
		gops := CSCAccumulateColumnsInt4(got, qc, cols)
		if wops != gops {
			t.Fatalf("rate %v: ops %d vs %d", rate, gops, wops)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("rate %v: unrolled int4 accumulate differs at %d: %d vs %d", rate, i, got[i], want[i])
			}
		}
	}
}

// randomCSCInt8 builds a random int8 CSC at the given density.
func randomCSCInt8(rows, cols int, density float64, r *rng.RNG) *CSCInt8 {
	c := &CSCInt8{Rows: rows, Cols: cols, ColPtr: make([]int32, cols+1)}
	for q := 0; q < cols; q++ {
		for ri := 0; ri < rows; ri++ {
			if r.Float64() < density {
				c.RowIdx = append(c.RowIdx, int32(ri))
				c.Q = append(c.Q, int8(r.Intn(255)-127))
			}
		}
		c.ColPtr[q+1] = int32(len(c.RowIdx))
	}
	return c
}

// int4FromInt8 packs an int8 CSC's pattern with 4-bit levels derived from
// the int8 levels (clamped to [-8,7]).
func int4FromInt8(c *CSCInt8) *CSCInt4 {
	out := &CSCInt4{
		Rows: c.Rows, Cols: c.Cols,
		ColPtr: c.ColPtr, RowIdx: c.RowIdx,
		Packed: make([]byte, (len(c.RowIdx)+1)/2),
	}
	for p, q := range c.Q {
		lv := int(q) >> 4 // [-8, 7]
		nib := byte(lv) & 0xF
		if p&1 == 0 {
			out.Packed[p>>1] |= nib
		} else {
			out.Packed[p>>1] |= nib << 4
		}
	}
	return out
}

// eventColumns draws the active-column index list of one timestep.
func eventColumns(k int, rate float64, r *rng.RNG) []int32 {
	var cols []int32
	for q := 0; q < k; q++ {
		if r.Float64() < rate {
			cols = append(cols, int32(q))
		}
	}
	return cols
}

func TestEffectiveWorkers(t *testing.T) {
	setWorkers(t, 0)
	if EffectiveWorkers(100) != 1 {
		t.Fatalf("Workers=0 must mean serial")
	}
	setWorkers(t, 8)
	if EffectiveWorkers(100) != 8 {
		t.Fatalf("Workers=8 clamped wrongly")
	}
	if EffectiveWorkers(3) != 3 {
		t.Fatalf("EffectiveWorkers must clamp to the strip ceiling")
	}
}
