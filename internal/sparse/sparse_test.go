package sparse

import (
	"math"
	"testing"
	"testing/quick"

	"ndsnn/internal/rng"
	"ndsnn/internal/tensor"
)

func TestERKConservesGlobalDensity(t *testing.T) {
	shapes := [][]int{
		{64, 3, 3, 3},
		{128, 64, 3, 3},
		{256, 128, 3, 3},
		{10, 256},
	}
	for _, density := range []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.5} {
		ds := ERKDensities(shapes, density)
		got := GlobalDensityOf(shapes, ds)
		if math.Abs(got-density)/density > 1e-9 {
			t.Fatalf("density %v: ERK global density = %v", density, got)
		}
		for i, d := range ds {
			if d < 0 || d > 1 {
				t.Fatalf("density %v: layer %d density %v outside [0,1]", density, i, d)
			}
		}
	}
}

func TestERKGivesSmallLayersHigherDensity(t *testing.T) {
	// ERK's point: parameter-light layers keep more of their weights.
	shapes := [][]int{
		{16, 3, 3, 3},    // small first conv
		{512, 512, 3, 3}, // huge mid conv
	}
	ds := ERKDensities(shapes, 0.1)
	if ds[0] <= ds[1] {
		t.Fatalf("expected small layer denser: %v vs %v", ds[0], ds[1])
	}
}

func TestERKCapsAtOneAndRedistributes(t *testing.T) {
	shapes := [][]int{
		{4, 2, 3, 3}, // tiny layer: raw scale pushes density > 1
		{256, 256, 3, 3},
	}
	ds := ERKDensities(shapes, 0.3)
	if ds[0] != 1 {
		t.Fatalf("tiny layer density = %v, want capped at 1", ds[0])
	}
	if got := GlobalDensityOf(shapes, ds); math.Abs(got-0.3) > 1e-9 {
		t.Fatalf("global density after cap = %v, want 0.3", got)
	}
}

func TestERKFullDensity(t *testing.T) {
	shapes := [][]int{{8, 4, 3, 3}, {16, 8, 3, 3}}
	ds := ERKDensities(shapes, 1)
	for i, d := range ds {
		if d != 1 {
			t.Fatalf("layer %d density = %v, want 1", i, d)
		}
	}
}

func TestERKPanicsOnBadDensity(t *testing.T) {
	for _, d := range []float64{0, -0.1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("density %v did not panic", d)
				}
			}()
			ERKDensities([][]int{{4, 4}}, d)
		}()
	}
}

func TestERKDensityConservationProperty(t *testing.T) {
	f := func(seed uint16, dRaw uint8) bool {
		r := rng.New(uint64(seed))
		nLayers := r.Intn(5) + 2
		shapes := make([][]int, nLayers)
		for i := range shapes {
			shapes[i] = []int{r.Intn(60) + 4, r.Intn(60) + 4, 3, 3}
		}
		density := 0.02 + 0.9*float64(dRaw)/255
		ds := ERKDensities(shapes, density)
		return math.Abs(GlobalDensityOf(shapes, ds)-density) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestUniformDensities(t *testing.T) {
	ds := UniformDensities(3, 0.25)
	for _, d := range ds {
		if d != 0.25 {
			t.Fatalf("uniform density = %v", d)
		}
	}
}

func TestRandomMaskExactCount(t *testing.T) {
	r := rng.New(4)
	m := RandomMask([]int{10, 10}, 0.37, r)
	if nz := m.CountNonZero(); nz != 37 {
		t.Fatalf("mask nonzeros = %d, want 37", nz)
	}
	for _, v := range m.Data {
		if v != 0 && v != 1 {
			t.Fatalf("mask value %v not binary", v)
		}
	}
}

func TestCountForDensityClamps(t *testing.T) {
	if CountForDensity(10, 1.5) != 10 {
		t.Fatal("did not clamp above")
	}
	if CountForDensity(10, -0.5) != 0 {
		t.Fatal("did not clamp below")
	}
	if CountForDensity(10, 0.55) != 6 {
		t.Fatal("rounding wrong")
	}
}

func TestBottomKActive(t *testing.T) {
	w := tensor.FromSlice([]float32{0.5, -0.1, 0.9, -0.01, 0.3}, 5)
	mask := tensor.FromSlice([]float32{1, 1, 1, 0, 1}, 5)
	// Active magnitudes: 0.5, 0.1, 0.9, (masked), 0.3 → two smallest: idx 1, 4.
	got := BottomKActive(w, mask, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Fatalf("BottomKActive = %v, want [1 4]", got)
	}
}

func TestBottomKActiveIgnoresMaskedOut(t *testing.T) {
	w := tensor.FromSlice([]float32{0.001, 1, 2}, 3)
	mask := tensor.FromSlice([]float32{0, 1, 1}, 3)
	got := BottomKActive(w, mask, 1)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("BottomKActive = %v, want [1]", got)
	}
}

func TestBottomKActiveKLargerThanActive(t *testing.T) {
	w := tensor.FromSlice([]float32{1, 2, 3}, 3)
	mask := tensor.FromSlice([]float32{1, 0, 0}, 3)
	got := BottomKActive(w, mask, 5)
	if len(got) != 1 {
		t.Fatalf("BottomKActive = %v, want single active index", got)
	}
}

func TestTopKInactive(t *testing.T) {
	g := tensor.FromSlice([]float32{10, -5, 0.1, 7, -20}, 5)
	mask := tensor.FromSlice([]float32{1, 0, 0, 0, 0}, 5)
	// Inactive grads: |−5|, |0.1|, |7|, |−20| → top-2: idx 4, 3.
	got := TopKInactive(g, mask, 2)
	if len(got) != 2 || got[0] != 4 || got[1] != 3 {
		t.Fatalf("TopKInactive = %v, want [4 3]", got)
	}
}

func TestTopKMagnitude(t *testing.T) {
	w := tensor.FromSlice([]float32{0.5, -3, 1, -0.2}, 4)
	got := TopKMagnitude(w, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("TopKMagnitude = %v, want [1 2]", got)
	}
}

func TestTopKZeroOrNegativeK(t *testing.T) {
	w := tensor.FromSlice([]float32{1, 2}, 2)
	mask := tensor.FromSlice([]float32{1, 1}, 2)
	if got := BottomKActive(w, mask, 0); got != nil {
		t.Fatalf("k=0 returned %v", got)
	}
	if got := TopKInactive(w, mask, -1); got != nil {
		t.Fatalf("k=-1 returned %v", got)
	}
	if got := TopKMagnitude(w, 0); got != nil {
		t.Fatalf("k=0 returned %v", got)
	}
}

func TestSelectionDeterministicOnTies(t *testing.T) {
	w := tensor.New(8)
	w.Fill(0.5)
	mask := tensor.New(8)
	mask.Fill(1)
	a := BottomKActive(w, mask, 3)
	b := BottomKActive(w, mask, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("tie-breaking is nondeterministic")
		}
	}
	if a[0] != 0 || a[1] != 1 || a[2] != 2 {
		t.Fatalf("ties should break by index: %v", a)
	}
}

func TestRandomInactiveCountAndValidity(t *testing.T) {
	r := rng.New(5)
	mask := tensor.FromSlice([]float32{1, 0, 0, 1, 0, 0}, 6)
	got := RandomInactive(mask, 3, r)
	if len(got) != 3 {
		t.Fatalf("RandomInactive returned %d indices, want 3", len(got))
	}
	for _, i := range got {
		if mask.Data[i] != 0 {
			t.Fatalf("RandomInactive selected active index %d", i)
		}
	}
}

func TestRandomInactiveExhausted(t *testing.T) {
	r := rng.New(6)
	mask := tensor.FromSlice([]float32{1, 1, 0}, 3)
	got := RandomInactive(mask, 10, r)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("RandomInactive = %v, want [2]", got)
	}
}

func TestMaskFromKeep(t *testing.T) {
	m := MaskFromKeep([]int{2, 2}, []int{0, 3})
	if m.Data[0] != 1 || m.Data[3] != 1 || m.Data[1] != 0 || m.Data[2] != 0 {
		t.Fatalf("MaskFromKeep = %v", m.Data)
	}
}

func TestCSRRoundTrip(t *testing.T) {
	r := rng.New(7)
	w := tensor.New(6, 9)
	for i := range w.Data {
		if r.Bernoulli(0.3) {
			w.Data[i] = r.NormFloat32()
		}
	}
	csr := EncodeCSR(w)
	back := csr.Decode()
	for i := range w.Data {
		if w.Data[i] != back.Data[i] {
			t.Fatalf("CSR round-trip mismatch at %d", i)
		}
	}
	if csr.NNZ() != w.CountNonZero() {
		t.Fatalf("NNZ = %d, want %d", csr.NNZ(), w.CountNonZero())
	}
}

func TestCSRRoundTripProperty(t *testing.T) {
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed))
		rows, cols := r.Intn(10)+1, r.Intn(10)+1
		w := tensor.New(rows, cols)
		for i := range w.Data {
			if r.Bernoulli(0.4) {
				w.Data[i] = r.NormFloat32()
			}
		}
		back := EncodeCSR(w).Decode()
		for i := range w.Data {
			if w.Data[i] != back.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCSRMatVecMatchesDense(t *testing.T) {
	r := rng.New(8)
	w := tensor.New(5, 7)
	for i := range w.Data {
		if r.Bernoulli(0.5) {
			w.Data[i] = r.NormFloat32()
		}
	}
	x := make([]float32, 7)
	for i := range x {
		x[i] = r.NormFloat32()
	}
	got := EncodeCSR(w).MatVec(x)
	want := tensor.MatVec(w, tensor.FromSlice(x, 7))
	for i := range got {
		if math.Abs(float64(got[i]-want.Data[i])) > 1e-5 {
			t.Fatalf("MatVec[%d] = %v, want %v", i, got[i], want.Data[i])
		}
	}
}

func TestCSREmptyMatrix(t *testing.T) {
	w := tensor.New(3, 4)
	csr := EncodeCSR(w)
	if csr.NNZ() != 0 {
		t.Fatalf("empty NNZ = %d", csr.NNZ())
	}
	back := csr.Decode()
	if back.CountNonZero() != 0 {
		t.Fatal("empty decode has nonzeros")
	}
}

func TestCSRMemoryBits(t *testing.T) {
	w := tensor.FromSlice([]float32{1, 0, 0, 2}, 2, 2)
	csr := EncodeCSR(w)
	// 2 nnz × (8+16) bits + 3 row pointers × 16 bits = 48 + 48 = 96.
	if got := csr.MemoryBits(8, 16); got != 96 {
		t.Fatalf("MemoryBits = %d, want 96", got)
	}
}

func TestTrainingFootprintMonotonicInSparsity(t *testing.T) {
	const n = 1_000_000
	prev := math.Inf(1)
	for _, theta := range []float64{0.5, 0.8, 0.9, 0.95, 0.99} {
		f := TrainingFootprintBits(n, theta, 5, TrainingBits, DefaultIndexBits)
		if f >= prev {
			t.Fatalf("footprint not decreasing at θ=%v: %v >= %v", theta, f, prev)
		}
		prev = f
	}
}

func TestTrainingFootprintFormula(t *testing.T) {
	// θ=0.9, N=1000, t=5, bw=32, bidx=16:
	// 0.1 × (6×1000×32 + 1000×16) = 0.1 × 208000 = 20800.
	got := TrainingFootprintBits(1000, 0.9, 5, 32, 16)
	if math.Abs(got-20800) > 1e-9 {
		t.Fatalf("footprint = %v, want 20800", got)
	}
}

func TestTrainingFootprintExactAddsRowPointers(t *testing.T) {
	base := TrainingFootprintBits(1000, 0.9, 5, 32, 16)
	exact := TrainingFootprintExactBits(1000, []int{8, 16}, 0.9, 5, 32, 16)
	want := base + float64(9+17)*16
	if math.Abs(exact-want) > 1e-9 {
		t.Fatalf("exact footprint = %v, want %v", exact, want)
	}
}

func TestInferenceFootprintPlatforms(t *testing.T) {
	// Higher-precision platforms cost more at the same sparsity.
	n := 100000
	loihi := InferenceFootprintBits(n, 0.95, 8, 16)
	hicann := InferenceFootprintBits(n, 0.95, 4, 16)
	fpga := InferenceFootprintBits(n, 0.95, 16, 16)
	if !(hicann < loihi && loihi < fpga) {
		t.Fatalf("platform ordering violated: %v %v %v", hicann, loihi, fpga)
	}
}

func TestSparseBeatsDenseAtHighSparsity(t *testing.T) {
	// The crossover the paper's Section III-D implies: at θ=0.99 a sparse
	// FP32+index model is far below the dense footprint; at θ=0 the index
	// overhead makes it worse.
	n := 1 << 20
	dense := DenseFootprintBits(n, 32)
	sparse99 := InferenceFootprintBits(n, 0.99, 32, 16)
	sparse0 := InferenceFootprintBits(n, 0, 32, 16)
	if sparse99 >= dense {
		t.Fatalf("θ=0.99 sparse (%v) not below dense (%v)", sparse99, dense)
	}
	if sparse0 <= dense {
		t.Fatalf("θ=0 sparse (%v) should exceed dense (%v) due to indices", sparse0, dense)
	}
}

func TestBitsToMiB(t *testing.T) {
	if got := BitsToMiB(8 * 1024 * 1024); got != 1 {
		t.Fatalf("BitsToMiB = %v, want 1", got)
	}
}
