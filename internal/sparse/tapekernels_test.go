package sparse

import (
	"testing"

	"ndsnn/internal/rng"
	"ndsnn/internal/tensor"
)

// Tests for the tape-replay gradient kernels (events as the cached-activation
// operand) and the transposed SDDMM variant, plus the FuseTimesteps edge
// cases: every kernel is pinned against the reference kernel it replaces.

func TestCSRGradABTEventsMatchesDense(t *testing.T) {
	const m, k, q = 9, 33, 24
	for _, rate := range spikeRates {
		r := rng.New(301 + uint64(rate*100))
		_, c := maskedWeights(m, k, 0.3, r)
		dy := tensor.New(m, q)
		for i := range dy.Data {
			dy.Data[i] = r.NormFloat32()
		}
		col := spikeMatrix(k, q, rate, r)
		ev, ok := EncodeEvents(col)
		if !ok {
			t.Fatal("binary operand rejected")
		}
		want := make([]float32, c.NNZ())
		CSRGradABTSerial(want, c, dy, col)
		got := make([]float32, c.NNZ())
		CSRGradABTEventsSerial(got, c, dy, ev)
		if d := maxAbsDiff(want, got); d > 1e-5 {
			t.Fatalf("rate %v: events ABT kernel differs by %v", rate, d)
		}
		// Accumulation adds on top of prior contents like the reference.
		CSRGradABTEventsSerial(got, c, dy, ev)
		CSRGradABTSerial(want, c, dy, col)
		if d := maxAbsDiff(want, got); d > 1e-5 {
			t.Fatalf("rate %v: events ABT accumulate differs by %v", rate, d)
		}
	}
}

func TestCSRGradATBEventsMatchesDense(t *testing.T) {
	const batch, m, k = 7, 15, 40
	for _, rate := range spikeRates {
		r := rng.New(311 + uint64(rate*100))
		_, c := maskedWeights(m, k, 0.25, r)
		dy := tensor.New(batch, m)
		for i := range dy.Data {
			dy.Data[i] = r.NormFloat32()
		}
		x := spikeMatrix(batch, k, rate, r)
		ev, ok := EncodeEvents(x)
		if !ok {
			t.Fatal("binary operand rejected")
		}
		want := make([]float32, c.NNZ())
		CSRGradATBInto(want, c, dy, x)
		got := make([]float32, c.NNZ())
		CSRGradATBEventsInto(got, c, dy, ev)
		if d := maxAbsDiff(want, got); d > 1e-5 {
			t.Fatalf("rate %v: events ATB kernel differs by %v", rate, d)
		}
	}
}

// TestCSRGradATBTransposedMatchesReference pins the blocked/transposed SDDMM
// against CSRGradATBInto bit-for-bit: the transpose changes memory access
// order, not summation order.
func TestCSRGradATBTransposedMatchesReference(t *testing.T) {
	const batch, m, k = 11, 13, 57
	for _, density := range []float64{0.05, 0.3, 1} {
		r := rng.New(321 + uint64(density*100))
		_, c := maskedWeights(m, k, density, r)
		dy := tensor.New(batch, m)
		x := tensor.New(batch, k)
		for i := range dy.Data {
			dy.Data[i] = r.NormFloat32()
		}
		for i := range x.Data {
			x.Data[i] = r.NormFloat32()
		}
		want := make([]float32, c.NNZ())
		CSRGradATBInto(want, c, dy, x)
		got := make([]float32, c.NNZ())
		CSRGradATBTransposedInto(got, c, dy, x)
		if d := maxAbsDiff(want, got); d != 0 {
			t.Fatalf("density %v: transposed ATB differs by %v", density, d)
		}
		// Accumulates like the reference.
		CSRGradATBTransposedInto(got, c, dy, x)
		CSRGradATBInto(want, c, dy, x)
		if d := maxAbsDiff(want, got); d != 0 {
			t.Fatalf("density %v: transposed ATB accumulate differs by %v", density, d)
		}
	}
}

func TestEventsScatterRowRoundTrip(t *testing.T) {
	r := rng.New(331)
	x := spikeMatrix(6, 17, 0.3, r)
	ev, ok := EncodeEvents(x)
	if !ok {
		t.Fatal("binary tensor rejected")
	}
	buf := make([]float32, 17)
	for row := 0; row < 6; row++ {
		ev.ScatterRowInto(row, buf, 1)
		for j := 0; j < 17; j++ {
			if buf[j] != x.Data[row*17+j] {
				t.Fatalf("row %d col %d: decoded %v, want %v", row, j, buf[j], x.Data[row*17+j])
			}
		}
		if got, want := ev.RowNNZ(row), 0; true {
			for j := 0; j < 17; j++ {
				if x.Data[row*17+j] != 0 {
					want++
				}
			}
			if got != want {
				t.Fatalf("row %d: RowNNZ %d, want %d", row, got, want)
			}
		}
		// Scatter-zero erases exactly what was written, leaving the buffer
		// reusable without a full memset.
		ev.ScatterRowInto(row, buf, 0)
		for j, v := range buf {
			if v != 0 {
				t.Fatalf("row %d: buffer not cleared at %d (%v)", row, j, v)
			}
		}
	}
}

// TestFuseTimestepsEdgeCases covers the degenerate patterns the time-major
// engine can hand the fuser: a single timestep, all-empty event patterns, and
// a timestep with 100% firing. In every case the fused kernel output must be
// bit-identical to per-timestep kernel calls.
func TestFuseTimestepsEdgeCases(t *testing.T) {
	const m, k, n = 8, 30, 12
	r := rng.New(341)
	_, c := maskedWeights(m, k, 0.2, r)
	csc := NewCSCFromCSR(c)

	cases := []struct {
		name  string
		rates []float64
	}{
		{"T=1", []float64{0.15}},
		{"all-empty", []float64{0, 0, 0}},
		{"full-firing-single", []float64{1}},
		{"mixed-with-full-and-empty", []float64{0, 1, 0.1}},
	}
	for _, tc := range cases {
		evs := make([]*Events, len(tc.rates))
		wants := make([]*tensor.Tensor, len(tc.rates))
		for tt, rate := range tc.rates {
			b := spikeMatrix(k, n, rate, r)
			ev, ok := EncodeEvents(b)
			if !ok {
				t.Fatalf("%s: binary operand rejected", tc.name)
			}
			evs[tt] = ev
			wants[tt] = tensor.New(m, n)
			CSCMatMulEventsSerialInto(wants[tt], csc, ev, false)
		}
		fused := FuseTimesteps(evs)
		T := len(tc.rates)
		if fused.Rows != k || fused.Cols != T*n {
			t.Fatalf("%s: fused shape [%d,%d], want [%d,%d]", tc.name, fused.Rows, fused.Cols, k, T*n)
		}
		wantNNZ := 0
		for _, ev := range evs {
			wantNNZ += ev.NNZ()
		}
		if fused.NNZ() != wantNNZ {
			t.Fatalf("%s: fused NNZ %d, want %d", tc.name, fused.NNZ(), wantNNZ)
		}
		dst := tensor.New(m, T*n)
		CSCMatMulEventsSerialInto(dst, csc, fused, false)
		for tt := 0; tt < T; tt++ {
			for row := 0; row < m; row++ {
				for j := 0; j < n; j++ {
					got := dst.Data[row*T*n+tt*n+j]
					want := wants[tt].Data[row*n+j]
					if got != want {
						t.Fatalf("%s: timestep %d [%d,%d]: fused %v, per-timestep %v", tc.name, tt, row, j, got, want)
					}
				}
			}
		}
	}

	// T=1 fusion must reproduce the single pattern verbatim (same indices,
	// same row pointers) — the fuser is a no-op there beyond a copy.
	b := spikeMatrix(k, n, 0.2, r)
	ev, _ := EncodeEvents(b)
	fused := FuseTimesteps([]*Events{ev})
	if fused.NNZ() != ev.NNZ() {
		t.Fatalf("T=1 fuse changed NNZ: %d vs %d", fused.NNZ(), ev.NNZ())
	}
	for i, j := range ev.ColIdx {
		if fused.ColIdx[i] != j {
			t.Fatalf("T=1 fuse changed ColIdx[%d]: %d vs %d", i, fused.ColIdx[i], j)
		}
	}
	for i, p := range ev.RowPtr {
		if fused.RowPtr[i] != p {
			t.Fatalf("T=1 fuse changed RowPtr[%d]: %d vs %d", i, fused.RowPtr[i], p)
		}
	}

	// Zero timesteps is defined as an empty pattern, not a panic.
	if empty := FuseTimesteps(nil); empty.NNZ() != 0 || empty.Rows != 0 {
		t.Fatalf("empty fuse: %+v", empty)
	}
}
