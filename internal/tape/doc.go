// Package tape implements the sparse temporal tape: the BPTT
// activation-cache subsystem and the time-major execution engine of the
// training stack.
//
// # Why a tape
//
// BPTT over T timesteps forces every layer to retain what its backward pass
// needs for each timestep. Before this package, those caches were dense
// tensors — even though almost all of them are binary spike rasters that are
// mostly zero at realistic firing rates. A Stack records each per-timestep
// activation as a Rec that is either event-encoded (a sparse.Events pattern,
// ~occupancy× the dense footprint) or dense (analog inputs, e.g. the first
// convolution under direct encoding or post-BatchNorm currents). The backward
// pass replays the tape: recorded event patterns are consumed directly by the
// event-aware gradient kernels in internal/sparse, so backward-weight work
// scales with weightDensity × spikeRate like the forward pass does.
//
// Every push and pop updates a package-level memory meter
// (CacheBytes/PeakBytes), so peak BPTT activation-cache memory is a measured
// quantity rather than a model — the sparse-tape benchmark records it.
//
// # Time-major execution
//
// Run drives a layer pipeline across all T timesteps one layer at a time
// (time-major) instead of all layers one timestep at a time (step-major).
// The two orders are equivalent for temporally-unrolled feedforward networks
// — inter-layer data flow is per-timestep and recurrence lives inside a
// layer — but time-major hands each layer its whole input sequence at once,
// which lets Conv2d fuse the T event patterns of a sample
// (sparse.FuseTimesteps) and compute all T forward passes in one traversal
// of the weight matrix. Layers opt into the fused path by implementing
// SequenceLayer; everything else is driven per timestep in order, which is
// exactly what the step-major schedule would have done to it.
//
// The package sits just above internal/sparse and internal/tensor; the layer
// library stores its caches in tape Stacks, and internal/snn's Network drives
// whole networks through Run/RunBackward. (The step-major loop that
// predated this engine is deleted; its behavior is pinned as golden
// fixtures in internal/snn's equivalence tests.)
package tape
