package tape

import "ndsnn/internal/tensor"

// Layer is the slice of the layer contract the execution engine needs:
// per-timestep forward and backward. internal/layers.Layer satisfies it
// structurally; the engine deliberately does not import the layer library so
// the dependency arrow keeps pointing downward.
type Layer interface {
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	Backward(dy *tensor.Tensor) *tensor.Tensor
}

// SequenceLayer is implemented by layers that can consume a whole timestep
// sequence at once — the time-major fast path. ForwardSeq must be
// semantically identical to T successive Forward calls (including what it
// records for backward); it exists so a layer can amortize work across
// timesteps, e.g. Conv2d's fused event GEMM traverses its weight matrix once
// for all T timesteps.
type SequenceLayer interface {
	Layer
	ForwardSeq(xs []*tensor.Tensor, train bool) []*tensor.Tensor
}

// SequenceBackwardLayer is the backward half of the time-major fast path: a
// layer that can replay its whole tape at once. BackwardSeq consumes the
// per-timestep output gradients (dys[t] for t = 0..T-1) and must accumulate
// the same parameter gradients and return the same input gradients as T
// Backward calls in reverse order — fusing the timesteps lets Conv2d pay one
// weight traversal and one event-pattern overhead for all T.
type SequenceBackwardLayer interface {
	Layer
	BackwardSeq(dys []*tensor.Tensor) []*tensor.Tensor
}

// Run executes the pipeline time-major: each layer processes all T timesteps
// (via ForwardSeq when implemented, else T in-order Forward calls) before the
// next layer runs. For temporally-unrolled feedforward networks this is
// equivalent to the step-major schedule — inter-layer data flow is
// per-timestep, and within-layer recurrence (LIF membranes) sees its
// timesteps in the same order — so outputs are identical; only the execution
// order and the fusion opportunities change. Returns the final layer's
// per-timestep outputs.
func Run(ls []Layer, xs []*tensor.Tensor, train bool) []*tensor.Tensor {
	cur := xs
	for _, l := range ls {
		if sl, ok := l.(SequenceLayer); ok {
			cur = sl.ForwardSeq(cur, train)
			continue
		}
		next := make([]*tensor.Tensor, len(cur))
		for t, x := range cur {
			next[t] = l.Forward(x, train)
		}
		cur = next
	}
	return cur
}

// RunBackward replays the pipeline time-major in reverse: layers last to
// first, and within each layer timesteps T-1..0 — the order the per-layer
// cache stacks and the LIF error recursion expect. douts[t] is the loss
// gradient w.r.t. the timestep-t output of the final layer; the returned
// slice holds the input gradients per timestep (useful for composite layers
// and tests; whole-network callers usually discard it).
func RunBackward(ls []Layer, douts []*tensor.Tensor) []*tensor.Tensor {
	cur := append([]*tensor.Tensor(nil), douts...)
	for i := len(ls) - 1; i >= 0; i-- {
		if sb, ok := ls[i].(SequenceBackwardLayer); ok {
			cur = sb.BackwardSeq(cur)
			continue
		}
		for t := len(cur) - 1; t >= 0; t-- {
			cur[t] = ls[i].Backward(cur[t])
		}
	}
	return cur
}
