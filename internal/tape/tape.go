package tape

import (
	"runtime"
	"sync/atomic"

	"ndsnn/internal/sparse"
	"ndsnn/internal/tensor"
)

// CacheEvents is the tape's kill switch: when false every Push records a
// dense Rec, reproducing the pre-tape dense-cache behavior exactly. It is a
// variable so benchmarks can measure the dense baseline and tests can force
// either representation.
var CacheEvents = true

// CacheMaxRate is the spike occupancy above which Push keeps the dense
// representation even for binary inputs. Memory-wise events win almost up to
// full occupancy (4·nnz + 4·(rows+1) bytes vs 4·N dense), but the replay
// kernels that consume the pattern stop beating the dense SDDMM well before
// that — the same economics as the forward's EventMaxRate gate — and a dense
// record replays with zero decode work. 0.5 keeps hot caches on the path
// that backpropagates fastest while still halving their worst-case footprint
// ceiling; raise it toward 1 when training memory, not wall-clock, is the
// binding constraint.
var CacheMaxRate = 0.5

// Rec is one recorded per-timestep activation: either a dense tensor or the
// event pattern of a binary one, plus the original tensor shape so replay can
// reconstruct it. The zero Rec is invalid; Recs are produced by Stack pushes.
type Rec struct {
	dense *tensor.Tensor
	ev    *sparse.Events
	shape []int
	// metered is what this record charged the package meter: Bytes(), or 0
	// when the record aliases a tensor an adjacent record already charged
	// (direct encoding pushes the same input tensor once per timestep).
	metered int64
}

// IsEvents reports whether the record is event-encoded.
func (r Rec) IsEvents() bool { return r.ev != nil }

// Events returns the recorded event pattern (nil for dense records). The
// pattern is 2-D: one row per leading-dimension slice of the original tensor
// (batch sample), columns flattened from the remaining dimensions.
func (r Rec) Events() *sparse.Events { return r.ev }

// Shape returns the recorded tensor's original shape.
func (r Rec) Shape() []int { return r.shape }

// Dense returns the dense tensor of a dense record (nil for event records).
func (r Rec) Dense() *tensor.Tensor { return r.dense }

// Materialize returns the recorded activation as a dense tensor in its
// original shape: the cached tensor itself for dense records, a fresh {0,1}
// decode for event records. Replay paths that cannot consume events directly
// use this; it is transient (one timestep at a time), so peak cache memory
// stays at the event-encoded level.
func (r Rec) Materialize() *tensor.Tensor {
	if r.dense != nil {
		return r.dense
	}
	out := tensor.New(r.shape...)
	cols := r.ev.Cols
	for q := 0; q < r.ev.Rows; q++ {
		row := out.Data[q*cols : (q+1)*cols]
		r.ev.ScatterRowInto(q, row, 1)
	}
	return out
}

// Bytes returns the retained heap footprint of the record: the dense payload,
// or the event pattern's index arrays.
func (r Rec) Bytes() int64 {
	if r.dense != nil {
		return int64(r.dense.Size()) * 4
	}
	return int64(len(r.ev.ColIdx)+len(r.ev.RowPtr)) * 4
}

// Stack is a LIFO of per-timestep activation records — the tape one layer
// writes during the forward pass and replays (in reverse) during BPTT. The
// zero value is an empty stack. Push/Pop/Clear update the package memory
// meter; they are called from the layer goroutine (not from batch workers),
// matching the cache discipline of the previous dense stacks.
type Stack struct {
	recs []Rec
}

// Push records x, event-encoding it when CacheEvents is set, the tensor is
// binary ({0,1} valued) and its occupancy is at most CacheMaxRate; otherwise
// it records the tensor itself. The event pattern is extracted over the
// [Dim(0), Size/Dim(0)] flattening (one row per batch sample). The gate is
// checked with a scan before the pattern is allocated — rejected (analog or
// hot) pushes stop at the first disqualifying value and allocate nothing
// beyond the parallel scan's per-strip counters; on large tensors the scan
// fans out over the tensor worker pool (chunked counts, each strip bailing
// at the same occupancy limit — the accept/reject decision is identical to
// the serial scan's).
func (s *Stack) Push(x *tensor.Tensor) {
	if CacheEvents {
		limit := int(CacheMaxRate * float64(x.Size()))
		nnz, binary := scanBinary(x.Data, limit)
		if binary && nnz > limit {
			binary = false
		}
		if binary {
			rows := x.Dim(0)
			cols := x.Size() / rows
			if ev, ok := sparse.EncodeEvents(x.Reshape(rows, cols)); ok {
				s.push(Rec{ev: ev, shape: x.Shape()})
				return
			}
		}
	}
	s.PushDense(x)
}

// scanBinaryStripMin is the tensor size below which the Push gate scan stays
// on the calling goroutine.
const scanBinaryStripMin = 1 << 15

// scanBinary counts the non-zero entries of data and reports whether every
// entry is in {0,1} with at most `limit` non-zeros. Large tensors are
// scanned in parallel strips on the shared worker pool (one strip per
// GOMAXPROCS, counts merged — exact, so the result cannot depend on
// scheduling); each strip stops early at the first non-binary value or once
// its own count passes the limit (a strip's count bounds the total from
// below, so bailing is sound). A false result may carry a partial count;
// callers must only use nnz when binary is true.
func scanBinary(data []float32, limit int) (nnz int, binary bool) {
	strips := runtime.GOMAXPROCS(0)
	if len(data) < scanBinaryStripMin || strips <= 1 {
		return scanBinaryRange(data, limit)
	}
	counts := make([]int, strips)
	oks := make([]bool, strips)
	for s := range oks {
		oks[s] = true // strips the partition does not invoke are vacuously ok
	}
	tensor.ParallelForStriped(len(data), strips, func(strip, lo, hi int) {
		counts[strip], oks[strip] = scanBinaryRange(data[lo:hi], limit)
	})
	binary = true
	for s := 0; s < strips; s++ {
		nnz += counts[s]
		binary = binary && oks[s]
	}
	return nnz, binary
}

func scanBinaryRange(data []float32, limit int) (nnz int, binary bool) {
	for _, v := range data {
		if v == 0 {
			continue
		}
		if v != 1 || nnz >= limit {
			return nnz, false
		}
		nnz++
	}
	return nnz, true
}

// PushDense records x as-is, bypassing event encoding (used by the
// CacheEvents=false baseline and for inputs known to be analog). A tensor
// aliased by the immediately preceding record — direct encoding presents the
// same input at every timestep — is retained by reference but charged to the
// meter only once, so PeakBytes tracks actual heap, not record count.
func (s *Stack) PushDense(x *tensor.Tensor) {
	r := Rec{dense: x, shape: x.Shape()}
	if n := len(s.recs); n > 0 && s.recs[n-1].dense == x {
		r.metered = -1 // sentinel: charge nothing
	}
	s.push(r)
}

func (s *Stack) push(r Rec) {
	if r.metered < 0 {
		r.metered = 0
	} else {
		r.metered = r.Bytes()
	}
	s.recs = append(s.recs, r)
	meterGrow(r.metered)
}

// Pop removes and returns the most recent record. It panics on an empty
// stack, which indicates a Forward(train=false)/Backward pairing bug.
func (s *Stack) Pop() Rec {
	if len(s.recs) == 0 {
		panic("tape: Pop on empty stack (forgot train=true or too many Backward calls)")
	}
	r := s.recs[len(s.recs)-1]
	s.recs[len(s.recs)-1] = Rec{}
	s.recs = s.recs[:len(s.recs)-1]
	meterGrow(-r.metered)
	return r
}

// Len returns the number of retained records.
func (s *Stack) Len() int { return len(s.recs) }

// Peek returns the i-th record from the top (0 = most recent) without
// removing it, so a fused backward can decide whether all its timesteps are
// event-encoded before committing to a replay strategy.
func (s *Stack) Peek(i int) Rec { return s.recs[len(s.recs)-1-i] }

// Clear drops every retained record (between-batch Reset), zeroing the
// vacated slots so the backing array does not pin the popped tensors.
func (s *Stack) Clear() {
	var n int64
	for i, r := range s.recs {
		n += r.metered
		s.recs[i] = Rec{}
	}
	meterGrow(-n)
	s.recs = s.recs[:0]
}

// The package meter tracks bytes currently retained by all live Stacks and
// the high-water mark since the last ResetPeak. Atomics because stacks on
// different goroutines (e.g. tests running networks concurrently) share it.
var meterCur, meterPeak atomic.Int64

func meterGrow(n int64) {
	cur := meterCur.Add(n)
	for {
		peak := meterPeak.Load()
		if cur <= peak || meterPeak.CompareAndSwap(peak, cur) {
			return
		}
	}
}

// CacheBytes returns the bytes currently retained across all tape stacks.
func CacheBytes() int64 { return meterCur.Load() }

// PeakBytes returns the high-water mark of CacheBytes since the last
// ResetPeak — the measured peak BPTT activation-cache memory.
func PeakBytes() int64 { return meterPeak.Load() }

// ResetPeak restarts peak tracking from the current retained size. Training
// loops call it at the start of each report window.
func ResetPeak() { meterPeak.Store(meterCur.Load()) }
