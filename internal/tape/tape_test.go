package tape_test

import (
	"testing"

	"ndsnn/internal/rng"
	"ndsnn/internal/tape"
	"ndsnn/internal/tensor"
)

// withCacheEvents runs fn with tape.CacheEvents forced and restored after.
func withCacheEvents(on bool, fn func()) {
	old := tape.CacheEvents
	tape.CacheEvents = on
	defer func() { tape.CacheEvents = old }()
	fn()
}

func spikeTensor(r *rng.RNG, rate float64, shape ...int) *tensor.Tensor {
	x := tensor.New(shape...)
	for i := range x.Data {
		if r.Float64() < rate {
			x.Data[i] = 1
		}
	}
	return x
}

// TestStackEventEncoding: binary low-rate tensors are recorded as events and
// materialize back bit-identically in their original shape.
func TestStackEventEncoding(t *testing.T) {
	r := rng.New(11)
	x := spikeTensor(r, 0.1, 3, 4, 5, 5)
	var s tape.Stack
	withCacheEvents(true, func() { s.Push(x) })
	if s.Len() != 1 {
		t.Fatalf("Len %d, want 1", s.Len())
	}
	rec := s.Pop()
	if !rec.IsEvents() {
		t.Fatal("low-rate binary tensor not event-encoded")
	}
	if ev := rec.Events(); ev.Rows != 3 || ev.Cols != 4*5*5 {
		t.Fatalf("event pattern [%d,%d], want [3,100]", ev.Rows, ev.Cols)
	}
	m := rec.Materialize()
	if !m.SameShape(x) {
		t.Fatalf("materialized shape %v, want %v", m.Shape(), x.Shape())
	}
	for i := range x.Data {
		if m.Data[i] != x.Data[i] {
			t.Fatalf("materialized[%d] = %v, want %v", i, m.Data[i], x.Data[i])
		}
	}
}

// TestStackDenseFallbacks: analog tensors, high-occupancy spikes, and the
// CacheEvents kill switch all keep the dense representation (and Materialize
// returns the original tensor untouched).
func TestStackDenseFallbacks(t *testing.T) {
	r := rng.New(21)
	var s tape.Stack

	analog := tensor.New(2, 6)
	for i := range analog.Data {
		analog.Data[i] = r.NormFloat32()
	}
	withCacheEvents(true, func() { s.Push(analog) })
	if rec := s.Pop(); rec.IsEvents() || rec.Materialize() != analog {
		t.Fatal("analog tensor should be cached dense, by reference")
	}

	hot := spikeTensor(r, 0.95, 2, 50) // occupancy above CacheMaxRate
	withCacheEvents(true, func() { s.Push(hot) })
	if rec := s.Pop(); rec.IsEvents() {
		t.Fatal("high-occupancy tensor should be cached dense")
	}

	cold := spikeTensor(r, 0.05, 2, 50)
	withCacheEvents(false, func() { s.Push(cold) })
	if rec := s.Pop(); rec.IsEvents() {
		t.Fatal("CacheEvents=false must force dense caching")
	}
}

// TestMeterAccounting: the package meter tracks retained bytes across
// push/pop/clear, and events cost ~occupancy of the dense footprint.
func TestMeterAccounting(t *testing.T) {
	r := rng.New(31)
	base := tape.CacheBytes()
	var s tape.Stack

	x := spikeTensor(r, 0.1, 8, 1000)
	dense := int64(x.Size()) * 4
	withCacheEvents(true, func() { s.Push(x) })
	evBytes := tape.CacheBytes() - base
	if evBytes <= 0 || evBytes > dense/2 {
		t.Fatalf("event record costs %d bytes, want well under dense %d", evBytes, dense)
	}

	withCacheEvents(false, func() { s.Push(x) })
	if got := tape.CacheBytes() - base; got != evBytes+dense {
		t.Fatalf("dense record accounting: %d, want %d", got, evBytes+dense)
	}

	tape.ResetPeak()
	if tape.PeakBytes() != tape.CacheBytes() {
		t.Fatal("ResetPeak should restart from current size")
	}
	y := spikeTensor(r, 0.1, 8, 1000)
	withCacheEvents(true, func() { s.Push(y) })
	peakWith := tape.PeakBytes()
	s.Pop()
	if tape.PeakBytes() != peakWith {
		t.Fatal("peak must not shrink on pop")
	}

	s.Clear()
	if got := tape.CacheBytes(); got != base {
		t.Fatalf("Clear left %d bytes retained (base %d)", got, base)
	}
	if s.Len() != 0 {
		t.Fatalf("Clear left %d records", s.Len())
	}
}

// TestMeterDoesNotDoubleCountAliasedTensor: direct encoding pushes the SAME
// input tensor once per timestep; the meter must charge the retained heap
// once, not once per record.
func TestMeterDoesNotDoubleCountAliasedTensor(t *testing.T) {
	r := rng.New(51)
	base := tape.CacheBytes()
	var s tape.Stack
	x := tensor.New(2, 30)
	for i := range x.Data {
		x.Data[i] = r.NormFloat32()
	}
	withCacheEvents(true, func() {
		for i := 0; i < 5; i++ {
			s.Push(x) // analog → dense record aliasing the same tensor
		}
	})
	if got, want := tape.CacheBytes()-base, int64(x.Size())*4; got != want {
		t.Fatalf("5 aliased pushes metered %d bytes, want %d (one copy)", got, want)
	}
	for i := 0; i < 5; i++ {
		if rec := s.Pop(); rec.Dense() != x {
			t.Fatal("aliased record lost its tensor")
		}
	}
	if got := tape.CacheBytes(); got != base {
		t.Fatalf("meter leaked %d bytes after popping aliased records", got-base)
	}
}

// TestStackPopOrder: LIFO replay order, mixed representations.
func TestStackPopOrder(t *testing.T) {
	r := rng.New(41)
	var s tape.Stack
	a := spikeTensor(r, 0.1, 2, 9)
	b := tensor.New(2, 9)
	b.Fill(0.5)
	withCacheEvents(true, func() {
		s.Push(a)
		s.Push(b)
	})
	if rec := s.Pop(); rec.IsEvents() || rec.Dense() != b {
		t.Fatal("first pop should return the analog record b")
	}
	if rec := s.Pop(); !rec.IsEvents() {
		t.Fatal("second pop should return the event record a")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Pop on empty stack should panic")
		}
	}()
	s.Pop()
}

// seqDouble is a SequenceLayer that doubles inputs and counts how it was
// driven, to verify Run prefers ForwardSeq.
type seqDouble struct {
	seqCalls, stepCalls int
}

func (l *seqDouble) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	l.stepCalls++
	return tensor.Map(x, func(v float32) float32 { return 2 * v })
}

func (l *seqDouble) Backward(dy *tensor.Tensor) *tensor.Tensor {
	return tensor.Map(dy, func(v float32) float32 { return 2 * v })
}

func (l *seqDouble) ForwardSeq(xs []*tensor.Tensor, train bool) []*tensor.Tensor {
	l.seqCalls++
	out := make([]*tensor.Tensor, len(xs))
	for t, x := range xs {
		out[t] = tensor.Map(x, func(v float32) float32 { return 2 * v })
	}
	return out
}

// stepInc is a plain per-timestep layer (no ForwardSeq).
type stepInc struct{}

func (stepInc) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	return tensor.Map(x, func(v float32) float32 { return v + 1 })
}

func (stepInc) Backward(dy *tensor.Tensor) *tensor.Tensor { return dy }

func TestRunDrivesSequenceLayers(t *testing.T) {
	sd := &seqDouble{}
	ls := []tape.Layer{sd, stepInc{}}
	xs := []*tensor.Tensor{tensor.FromSlice([]float32{1, 2}, 1, 2), tensor.FromSlice([]float32{3, 4}, 1, 2)}
	outs := tape.Run(ls, xs, true)
	if sd.seqCalls != 1 || sd.stepCalls != 0 {
		t.Fatalf("SequenceLayer driven %d seq / %d step calls, want 1/0", sd.seqCalls, sd.stepCalls)
	}
	want := [][]float32{{3, 5}, {7, 9}}
	for tt, o := range outs {
		for i, v := range o.Data {
			if v != want[tt][i] {
				t.Fatalf("outs[%d][%d] = %v, want %v", tt, i, v, want[tt][i])
			}
		}
	}
	// Backward runs layers in reverse, all timesteps each: the doubling layer
	// applies once to each timestep gradient.
	dins := tape.RunBackward(ls, outs)
	for tt, g := range dins {
		for i, v := range g.Data {
			if v != 2*want[tt][i] {
				t.Fatalf("dins[%d][%d] = %v, want %v", tt, i, v, 2*want[tt][i])
			}
		}
	}
}

// TestMaterializeEventsDecode pins Materialize against a hand decode for a
// pattern built directly (no Stack involved).
func TestMaterializeEventsDecode(t *testing.T) {
	x := tensor.FromSlice([]float32{0, 1, 0, 1, 0, 0, 1, 0}, 2, 4)
	var s tape.Stack
	withCacheEvents(true, func() { s.Push(x) })
	rec := s.Pop()
	if !rec.IsEvents() {
		t.Fatal("binary tensor not event-encoded")
	}
	m := rec.Materialize()
	for i := range x.Data {
		if m.Data[i] != x.Data[i] {
			t.Fatalf("decode mismatch at %d", i)
		}
	}
}
