package tensor

import (
	"testing"

	"ndsnn/internal/rng"
)

// Micro-benchmarks of the kernels that dominate training time. Sizes mirror
// the bench-scale models: GEMMs around [32..256]², im2col over 16-32 px
// feature maps.

func benchTensor(b *testing.B, shape ...int) *Tensor {
	b.Helper()
	r := rng.New(1)
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = r.NormFloat32()
	}
	return t
}

func BenchmarkMatMul128(b *testing.B) {
	x := benchTensor(b, 128, 128)
	y := benchTensor(b, 128, 128)
	dst := New(128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, x, y, false)
	}
	b.SetBytes(128 * 128 * 128 * 4)
}

func BenchmarkMatMulABT128(b *testing.B) {
	x := benchTensor(b, 128, 128)
	y := benchTensor(b, 128, 128)
	dst := New(128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulABTInto(dst, x, y, false)
	}
}

func BenchmarkMatMulATB128(b *testing.B) {
	x := benchTensor(b, 128, 128)
	y := benchTensor(b, 128, 128)
	dst := New(128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulATBInto(dst, x, y, false)
	}
}

func BenchmarkMatMulSparseRows(b *testing.B) {
	// The GEMM kernel skips zero multiplicands; measure the win at 90%
	// weight sparsity, the regime sparse training lives in.
	x := benchTensor(b, 128, 128)
	r := rng.New(2)
	for i := range x.Data {
		if r.Float64() < 0.9 {
			x.Data[i] = 0
		}
	}
	y := benchTensor(b, 128, 128)
	dst := New(128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, x, y, false)
	}
}

func BenchmarkIm2Col16px(b *testing.B) {
	src := benchTensor(b, 16, 16, 16)
	oh := ConvOutSize(16, 3, 1, 1)
	dst := make([]float32, 16*9*oh*oh)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Im2Col(dst, src.Data, 16, 16, 16, 3, 3, 1, 1, oh, oh)
	}
}

func BenchmarkCol2Im16px(b *testing.B) {
	oh := ConvOutSize(16, 3, 1, 1)
	col := benchTensor(b, 16*9, oh*oh)
	dst := make([]float32, 16*16*16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Col2Im(dst, col.Data, 16, 16, 16, 3, 3, 1, 1, oh, oh)
	}
}

func BenchmarkMaxPoolBatch(b *testing.B) {
	x := benchTensor(b, 32, 16, 16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaxPool(x, 2, 2)
	}
}

func BenchmarkAvgPoolBatch(b *testing.B) {
	x := benchTensor(b, 32, 16, 16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AvgPool(x, 2, 2)
	}
}
