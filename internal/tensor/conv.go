package tensor

import "fmt"

// ConvOutSize returns the spatial output size of a convolution or pooling
// window of size k with the given stride and symmetric zero padding.
func ConvOutSize(in, k, stride, pad int) int {
	out := (in+2*pad-k)/stride + 1
	if out <= 0 {
		panic(fmt.Sprintf("tensor: conv output size %d for in=%d k=%d stride=%d pad=%d", out, in, k, stride, pad))
	}
	return out
}

// Im2Col expands one input sample src (laid out [C,H,W]) into the column
// matrix dst (laid out [C*KH*KW, OH*OW] row-major), applying symmetric zero
// padding. dst must have length C*KH*KW*OH*OW; it is fully overwritten.
//
// Row index is (ci*kh + ki)*kw + kj and column index is oy*ow + ox, which
// matches the [F, C*KH*KW] weight matrix layout used by the Conv2d layer so
// that output = weight · col.
func Im2Col(dst, src []float32, c, h, w, kh, kw, stride, pad, oh, ow int) {
	if len(src) != c*h*w {
		panic("tensor: Im2Col src length mismatch")
	}
	p := oh * ow
	if len(dst) != c*kh*kw*p {
		panic("tensor: Im2Col dst length mismatch")
	}
	for ci := 0; ci < c; ci++ {
		chanBase := ci * h * w
		for ki := 0; ki < kh; ki++ {
			for kj := 0; kj < kw; kj++ {
				row := ((ci*kh+ki)*kw + kj) * p
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride + ki - pad
					dstRow := dst[row+oy*ow : row+(oy+1)*ow]
					if iy < 0 || iy >= h {
						for ox := range dstRow {
							dstRow[ox] = 0
						}
						continue
					}
					srcRow := src[chanBase+iy*w : chanBase+(iy+1)*w]
					for ox := 0; ox < ow; ox++ {
						ix := ox*stride + kj - pad
						if ix < 0 || ix >= w {
							dstRow[ox] = 0
						} else {
							dstRow[ox] = srcRow[ix]
						}
					}
				}
			}
		}
	}
}

// Col2Im scatters the column-matrix gradient col (laid out like Im2Col's
// dst) back into the input-sample gradient dst (laid out [C,H,W]),
// accumulating overlapping windows. dst is NOT zeroed first.
func Col2Im(dst, col []float32, c, h, w, kh, kw, stride, pad, oh, ow int) {
	if len(dst) != c*h*w {
		panic("tensor: Col2Im dst length mismatch")
	}
	p := oh * ow
	if len(col) != c*kh*kw*p {
		panic("tensor: Col2Im col length mismatch")
	}
	for ci := 0; ci < c; ci++ {
		chanBase := ci * h * w
		for ki := 0; ki < kh; ki++ {
			for kj := 0; kj < kw; kj++ {
				row := ((ci*kh+ki)*kw + kj) * p
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride + ki - pad
					if iy < 0 || iy >= h {
						continue
					}
					colRow := col[row+oy*ow : row+(oy+1)*ow]
					dstRow := dst[chanBase+iy*w : chanBase+(iy+1)*w]
					for ox := 0; ox < ow; ox++ {
						ix := ox*stride + kj - pad
						if ix >= 0 && ix < w {
							dstRow[ix] += colRow[ox]
						}
					}
				}
			}
		}
	}
}

// Conv2DDirect computes a 2-D convolution by the naive definition. It exists
// as a slow reference implementation for testing the im2col-based path.
// x: [B,C,H,W], weight: [F,C,KH,KW], bias: nil or [F]. Returns [B,F,OH,OW].
func Conv2DDirect(x, weight, bias *Tensor, stride, pad int) *Tensor {
	b, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	f, wc, kh, kw := weight.Dim(0), weight.Dim(1), weight.Dim(2), weight.Dim(3)
	if wc != c {
		panic(fmt.Sprintf("tensor: Conv2DDirect channel mismatch %d vs %d", wc, c))
	}
	oh := ConvOutSize(h, kh, stride, pad)
	ow := ConvOutSize(w, kw, stride, pad)
	out := New(b, f, oh, ow)
	for bi := 0; bi < b; bi++ {
		for fi := 0; fi < f; fi++ {
			var bv float32
			if bias != nil {
				bv = bias.Data[fi]
			}
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					acc := bv
					for ci := 0; ci < c; ci++ {
						for ki := 0; ki < kh; ki++ {
							iy := oy*stride + ki - pad
							if iy < 0 || iy >= h {
								continue
							}
							for kj := 0; kj < kw; kj++ {
								ix := ox*stride + kj - pad
								if ix < 0 || ix >= w {
									continue
								}
								acc += x.At(bi, ci, iy, ix) * weight.At(fi, ci, ki, kj)
							}
						}
					}
					out.Set(acc, bi, fi, oy, ox)
				}
			}
		}
	}
	return out
}
