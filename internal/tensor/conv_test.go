package tensor

import (
	"testing"

	"ndsnn/internal/rng"
)

// conv via im2col for one sample, mirroring what the Conv2d layer does.
func convViaIm2Col(x, weight *Tensor, stride, pad int) *Tensor {
	b, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	f, _, kh, kw := weight.Dim(0), weight.Dim(1), weight.Dim(2), weight.Dim(3)
	oh := ConvOutSize(h, kh, stride, pad)
	ow := ConvOutSize(w, kw, stride, pad)
	wmat := weight.Reshape(f, c*kh*kw)
	out := New(b, f, oh, ow)
	col := make([]float32, c*kh*kw*oh*ow)
	for bi := 0; bi < b; bi++ {
		Im2Col(col, x.Data[bi*c*h*w:(bi+1)*c*h*w], c, h, w, kh, kw, stride, pad, oh, ow)
		y := MatMul(wmat, FromSlice(col, c*kh*kw, oh*ow))
		copy(out.Data[bi*f*oh*ow:(bi+1)*f*oh*ow], y.Data)
	}
	return out
}

func TestConvOutSize(t *testing.T) {
	cases := []struct{ in, k, stride, pad, want int }{
		{32, 3, 1, 1, 32},
		{32, 3, 2, 1, 16},
		{32, 2, 2, 0, 16},
		{5, 5, 1, 0, 1},
		{64, 3, 1, 1, 64},
		{7, 3, 2, 1, 4},
	}
	for _, c := range cases {
		if got := ConvOutSize(c.in, c.k, c.stride, c.pad); got != c.want {
			t.Fatalf("ConvOutSize(%d,%d,%d,%d) = %d, want %d", c.in, c.k, c.stride, c.pad, got, c.want)
		}
	}
}

func TestConvOutSizePanicsWhenInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid ConvOutSize did not panic")
		}
	}()
	ConvOutSize(2, 5, 1, 0)
}

func TestIm2ColMatchesDirectConv(t *testing.T) {
	r := rng.New(3)
	cases := []struct{ b, c, h, w, f, k, stride, pad int }{
		{1, 1, 4, 4, 1, 3, 1, 1},
		{2, 3, 8, 8, 4, 3, 1, 1},
		{2, 3, 8, 8, 4, 3, 2, 1},
		{1, 2, 5, 7, 3, 3, 1, 0},
		{2, 4, 6, 6, 2, 5, 1, 2},
		{1, 1, 6, 6, 1, 1, 1, 0},
		{3, 2, 9, 9, 5, 3, 3, 1},
	}
	for _, cse := range cases {
		x := randTensor(r, cse.b, cse.c, cse.h, cse.w)
		w := randTensor(r, cse.f, cse.c, cse.k, cse.k)
		got := convViaIm2Col(x, w, cse.stride, cse.pad)
		want := Conv2DDirect(x, w, nil, cse.stride, cse.pad)
		if !got.SameShape(want) {
			t.Fatalf("case %+v: shape %v vs %v", cse, got.Shape(), want.Shape())
		}
		for i := range want.Data {
			if !almostEq(got.Data[i], want.Data[i], 1e-4) {
				t.Fatalf("case %+v: element %d = %v, want %v", cse, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestCol2ImIsIm2ColAdjoint(t *testing.T) {
	// <im2col(x), y> == <x, col2im(y)> — the defining property of the
	// adjoint, which is exactly what backward passes rely on.
	r := rng.New(5)
	c, h, w, k, stride, pad := 3, 6, 6, 3, 1, 1
	oh := ConvOutSize(h, k, stride, pad)
	ow := ConvOutSize(w, k, stride, pad)
	x := randTensor(r, c, h, w)
	y := randTensor(r, c*k*k, oh*ow)
	col := make([]float32, c*k*k*oh*ow)
	Im2Col(col, x.Data, c, h, w, k, k, stride, pad, oh, ow)
	lhs := 0.0
	for i, v := range col {
		lhs += float64(v) * float64(y.Data[i])
	}
	back := make([]float32, c*h*w)
	Col2Im(back, y.Data, c, h, w, k, k, stride, pad, oh, ow)
	rhs := 0.0
	for i, v := range back {
		rhs += float64(v) * float64(x.Data[i])
	}
	if diff := lhs - rhs; diff > 1e-2 || diff < -1e-2 {
		t.Fatalf("adjoint mismatch: %v vs %v", lhs, rhs)
	}
}

func TestCol2ImAccumulates(t *testing.T) {
	c, h, w, k := 1, 3, 3, 3
	oh := ConvOutSize(h, k, 1, 1)
	ow := ConvOutSize(w, k, 1, 1)
	col := make([]float32, c*k*k*oh*ow)
	for i := range col {
		col[i] = 1
	}
	dst := make([]float32, c*h*w)
	Col2Im(dst, col, c, h, w, k, k, 1, 1, oh, ow)
	// Center pixel participates in all 9 windows.
	if dst[4] != 9 {
		t.Fatalf("center accumulation = %v, want 9", dst[4])
	}
	// Corner pixel participates in 4 windows (k=3, pad=1).
	if dst[0] != 4 {
		t.Fatalf("corner accumulation = %v, want 4", dst[0])
	}
}

func TestConv2DDirectKnownValues(t *testing.T) {
	// 2x2 input, 2x2 kernel of ones, no padding → single output = sum.
	x := FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	w := FromSlice([]float32{1, 1, 1, 1}, 1, 1, 2, 2)
	out := Conv2DDirect(x, w, nil, 1, 0)
	if out.Size() != 1 || out.Data[0] != 10 {
		t.Fatalf("conv = %v, want [10]", out.Data)
	}
}

func TestConv2DDirectBias(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	w := FromSlice([]float32{1, 1, 1, 1}, 1, 1, 2, 2)
	bias := FromSlice([]float32{0.5}, 1)
	out := Conv2DDirect(x, w, bias, 1, 0)
	if out.Data[0] != 10.5 {
		t.Fatalf("conv+bias = %v, want 10.5", out.Data[0])
	}
}

func TestMaxPoolForward(t *testing.T) {
	x := FromSlice([]float32{
		1, 2, 5, 3,
		4, 0, 1, 2,
		7, 8, 2, 1,
		0, 3, 4, 9,
	}, 1, 1, 4, 4)
	out, idx := MaxPool(x, 2, 2)
	want := []float32{4, 5, 8, 9}
	for i, v := range want {
		if out.Data[i] != v {
			t.Fatalf("MaxPool[%d] = %v, want %v", i, out.Data[i], v)
		}
	}
	wantIdx := []int32{4, 2, 9, 15}
	for i, v := range wantIdx {
		if idx[i] != v {
			t.Fatalf("MaxPool idx[%d] = %d, want %d", i, idx[i], v)
		}
	}
}

func TestMaxPoolBackwardRouting(t *testing.T) {
	x := FromSlice([]float32{
		1, 2, 5, 3,
		4, 0, 1, 2,
		7, 8, 2, 1,
		0, 3, 4, 9,
	}, 1, 1, 4, 4)
	out, idx := MaxPool(x, 2, 2)
	dy := New(out.Shape()...)
	dy.Fill(1)
	dx := MaxPoolBackward(dy, idx, x.Shape())
	// Gradient lands only on the four argmax positions.
	total := dx.Sum()
	if total != 4 {
		t.Fatalf("MaxPoolBackward sum = %v, want 4", total)
	}
	for _, i := range []int{4, 2, 9, 15} {
		if dx.Data[i] != 1 {
			t.Fatalf("gradient missing at argmax position %d", i)
		}
	}
}

func TestAvgPoolForward(t *testing.T) {
	x := FromSlice([]float32{
		1, 2, 5, 3,
		4, 0, 1, 2,
		7, 8, 2, 1,
		0, 3, 4, 9,
	}, 1, 1, 4, 4)
	out := AvgPool(x, 2, 2)
	want := []float32{1.75, 2.75, 4.5, 4}
	for i, v := range want {
		if !almostEq(out.Data[i], v, 1e-6) {
			t.Fatalf("AvgPool[%d] = %v, want %v", i, out.Data[i], v)
		}
	}
}

func TestAvgPoolBackwardUniform(t *testing.T) {
	x := randTensor(rng.New(1), 2, 3, 4, 4)
	out := AvgPool(x, 2, 2)
	dy := New(out.Shape()...)
	dy.Fill(4)
	dx := AvgPoolBackward(dy, 2, 2, x.Shape())
	// Each input element belongs to exactly one 2x2 window → gradient 1.
	for i, v := range dx.Data {
		if v != 1 {
			t.Fatalf("AvgPoolBackward[%d] = %v, want 1", i, v)
		}
	}
}

func TestGlobalAvgPool(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	out := AvgPool(x, 2, 2)
	if out.Size() != 1 || out.Data[0] != 2.5 {
		t.Fatalf("global avg = %v, want [2.5]", out.Data)
	}
}

func TestParallelForCoversRange(t *testing.T) {
	hit := make([]int, 10000)
	ParallelFor(len(hit), 1000, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			hit[i]++
		}
	})
	for i, h := range hit {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestParallelForEmpty(t *testing.T) {
	called := false
	ParallelFor(0, 10, func(lo, hi int) { called = true })
	if called {
		t.Fatal("ParallelFor(0) invoked fn")
	}
}
