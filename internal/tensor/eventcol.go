package tensor

// Event-aware im2col variants for the dual-sparse forward path.
//
// SNN activations are binary spike tensors that are mostly zero, so the
// column matrix im2col produces is mostly zero too. The variants here expand
// the input exactly like Im2Col while additionally recording where the
// non-zeros are, at two granularities:
//
//   - Im2ColOccupancy marks which output columns (receptive-field patches)
//     are entirely zero, so column-masked GEMMs can skip them wholesale.
//   - Im2ColEvents records every non-zero entry as a CSR-style
//     (row → column list) pattern over the column matrix and verifies that
//     the input is binary, which is what the fully event-driven kernels in
//     internal/sparse consume.
//
// Both are single-pass: the bookkeeping is fused into the same loop that
// fills dst, so the extra cost is O(nnz) on top of the unavoidable
// O(C·KH·KW·OH·OW) fill.

// Im2ColOccupancy is Im2Col plus column-occupancy tracking: colActive[j] is
// set to true iff output column j (output position j = oy·OW+ox) receives at
// least one non-zero input value. colActive must have length OH·OW; it is
// fully overwritten. Returns the number of active columns.
//
// An inactive column means the entire receptive field of that output
// position is zero, so every GEMM output for it is exactly zero — the
// whole-column skip exploited by the column-masked kernels in
// internal/sparse.
func Im2ColOccupancy(dst, src []float32, c, h, w, kh, kw, stride, pad, oh, ow int, colActive []bool) int {
	p := oh * ow
	if len(colActive) != p {
		panic("tensor: Im2ColOccupancy colActive length mismatch")
	}
	Im2Col(dst, src, c, h, w, kh, kw, stride, pad, oh, ow)
	for j := range colActive {
		colActive[j] = false
	}
	rows := c * kh * kw
	active := 0
	for r := 0; r < rows; r++ {
		row := dst[r*p : (r+1)*p]
		for j, v := range row {
			if v != 0 && !colActive[j] {
				colActive[j] = true
				active++
			}
		}
	}
	return active
}

// Im2ColPatternFromEvents computes the same CSR-style event pattern
// Im2ColEvents extracts — row r's active output columns, ascending — directly
// from the input-space non-zero pattern of one sample, without touching a
// dense column matrix at all. flat lists the sample's non-zero positions as
// ascending flat C·H·W indices (one row of the tape's recorded event
// pattern); rowPtr must have length C·KH·KW+1; colIdx is appended to and
// returned (pass colIdx[:0] to reuse its backing array).
//
// This is the tape-replay fast path: work is O(KH·KW·nnz) instead of the
// O(C·KH·KW·OH·OW) dense expansion, so rebuilding a timestep's pattern costs
// ~occupancy of what the forward paid. The output is identical to what
// Im2ColEvents would produce for the decoded tensor (pinned by test).
func Im2ColPatternFromEvents(flat []int32, c, h, w, kh, kw, stride, pad, oh, ow int, rowPtr []int32, colIdx []int32) []int32 {
	if len(rowPtr) != c*kh*kw+1 {
		panic("tensor: Im2ColPatternFromEvents rowPtr length mismatch")
	}
	rowPtr[0] = 0
	start := 0
	for ci := 0; ci < c; ci++ {
		chanBase := int32(ci * h * w)
		chanHi := chanBase + int32(h*w)
		end := start
		for end < len(flat) && flat[end] < chanHi {
			end++
		}
		spikes := flat[start:end]
		for ki := 0; ki < kh; ki++ {
			for kj := 0; kj < kw; kj++ {
				r := (ci*kh+ki)*kw + kj
				// Spikes ascend in (iy,ix), so the emitted output columns
				// j = oy·OW+ox ascend too — the CSR invariant.
				for _, f := range spikes {
					rel := int(f - chanBase)
					iy := rel / w
					ix := rel - iy*w
					ty := iy + pad - ki
					tx := ix + pad - kj
					if ty < 0 || tx < 0 {
						continue
					}
					if stride != 1 && (ty%stride != 0 || tx%stride != 0) {
						continue
					}
					oy := ty / stride
					ox := tx / stride
					if oy < oh && ox < ow {
						colIdx = append(colIdx, int32(oy*ow+ox))
					}
				}
				rowPtr[r+1] = int32(len(colIdx))
			}
		}
		start = end
	}
	return colIdx
}

// Im2ColEvents is Im2Col plus event extraction: while filling dst it appends
// the column index of every non-zero entry to colIdx (row-major, so the
// result is grouped by row in ascending column order — exactly a CSR
// pattern) and records per-row extents in rowPtr, which must have length
// C·KH·KW+1. It also checks that every non-zero equals exactly 1.
//
// Returns the appended colIdx slice and whether the input was binary ({0,1}
// valued). When it returns binary=false the dst expansion is still complete
// and correct, but the event pattern is truncated and must be discarded —
// callers fall back to the dense or weight-only-CSR path.
//
// The caller owns the backing arrays, so a batch loop can reuse them across
// samples (pass colIdx[:0] to reset without reallocating).
func Im2ColEvents(dst, src []float32, c, h, w, kh, kw, stride, pad, oh, ow int, rowPtr []int32, colIdx []int32) ([]int32, bool) {
	if len(src) != c*h*w {
		panic("tensor: Im2ColEvents src length mismatch")
	}
	p := oh * ow
	if len(dst) != c*kh*kw*p {
		panic("tensor: Im2ColEvents dst length mismatch")
	}
	if len(rowPtr) != c*kh*kw+1 {
		panic("tensor: Im2ColEvents rowPtr length mismatch")
	}
	rowPtr[0] = 0
	binary := true
	for ci := 0; ci < c; ci++ {
		chanBase := ci * h * w
		for ki := 0; ki < kh; ki++ {
			for kj := 0; kj < kw; kj++ {
				r := (ci*kh+ki)*kw + kj
				row := r * p
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride + ki - pad
					dstRow := dst[row+oy*ow : row+(oy+1)*ow]
					if iy < 0 || iy >= h {
						for ox := range dstRow {
							dstRow[ox] = 0
						}
						continue
					}
					srcRow := src[chanBase+iy*w : chanBase+(iy+1)*w]
					jBase := int32(oy * ow)
					for ox := 0; ox < ow; ox++ {
						ix := ox*stride + kj - pad
						if ix < 0 || ix >= w {
							dstRow[ox] = 0
							continue
						}
						v := srcRow[ix]
						dstRow[ox] = v
						if v != 0 && binary {
							if v != 1 {
								binary = false
								continue
							}
							colIdx = append(colIdx, jBase+int32(ox))
						}
					}
				}
				rowPtr[r+1] = int32(len(colIdx))
			}
		}
	}
	return colIdx, binary
}
