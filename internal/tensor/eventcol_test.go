package tensor

import (
	"testing"

	"ndsnn/internal/rng"
)

// spikeInput builds a [c,h,w] binary sample with the given firing rate.
func spikeInput(c, h, w int, rate float64, r *rng.RNG) []float32 {
	src := make([]float32, c*h*w)
	for i := range src {
		if r.Float64() < rate {
			src[i] = 1
		}
	}
	return src
}

func TestIm2ColOccupancyMatchesIm2Col(t *testing.T) {
	const c, h, w, k, stride, pad = 3, 7, 7, 3, 1, 1
	oh := ConvOutSize(h, k, stride, pad)
	ow := ConvOutSize(w, k, stride, pad)
	p := oh * ow
	for _, rate := range []float64{0, 0.01, 0.1, 0.5, 1} {
		r := rng.New(11 + uint64(rate*100))
		src := spikeInput(c, h, w, rate, r)
		want := make([]float32, c*k*k*p)
		Im2Col(want, src, c, h, w, k, k, stride, pad, oh, ow)
		got := make([]float32, len(want))
		colActive := make([]bool, p)
		active := Im2ColOccupancy(got, src, c, h, w, k, k, stride, pad, oh, ow, colActive)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("rate %v: dst[%d] = %v, want %v", rate, i, got[i], want[i])
			}
		}
		count := 0
		for j := 0; j < p; j++ {
			any := false
			for q := 0; q < c*k*k; q++ {
				if want[q*p+j] != 0 {
					any = true
					break
				}
			}
			if any != colActive[j] {
				t.Fatalf("rate %v: colActive[%d] = %v, want %v", rate, j, colActive[j], any)
			}
			if any {
				count++
			}
		}
		if count != active {
			t.Fatalf("rate %v: active count %d, want %d", rate, active, count)
		}
	}
}

func TestIm2ColEventsMatchesIm2Col(t *testing.T) {
	const c, h, w, k, stride, pad = 4, 6, 6, 3, 2, 1
	oh := ConvOutSize(h, k, stride, pad)
	ow := ConvOutSize(w, k, stride, pad)
	p := oh * ow
	ckk := c * k * k
	for _, rate := range []float64{0, 0.05, 0.5, 1} {
		r := rng.New(21 + uint64(rate*100))
		src := spikeInput(c, h, w, rate, r)
		want := make([]float32, ckk*p)
		Im2Col(want, src, c, h, w, k, k, stride, pad, oh, ow)
		got := make([]float32, len(want))
		rowPtr := make([]int32, ckk+1)
		colIdx, binary := Im2ColEvents(got, src, c, h, w, k, k, stride, pad, oh, ow, rowPtr, nil)
		if !binary {
			t.Fatalf("rate %v: binary input reported as non-binary", rate)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("rate %v: dst[%d] = %v, want %v", rate, i, got[i], want[i])
			}
		}
		// The events must enumerate exactly the non-zero positions, grouped
		// by row in ascending column order.
		e := 0
		for q := 0; q < ckk; q++ {
			if int(rowPtr[q]) != e {
				t.Fatalf("rate %v: rowPtr[%d] = %d, want %d", rate, q, rowPtr[q], e)
			}
			for j := 0; j < p; j++ {
				if want[q*p+j] == 0 {
					continue
				}
				if e >= len(colIdx) || int(colIdx[e]) != j {
					t.Fatalf("rate %v: event %d: got col %v, want (%d,%d)", rate, e, colIdx[e:], q, j)
				}
				e++
			}
		}
		if e != len(colIdx) || int(rowPtr[ckk]) != e {
			t.Fatalf("rate %v: %d events recorded, want %d (rowPtr end %d)", rate, len(colIdx), e, rowPtr[ckk])
		}
	}
}

// TestIm2ColPatternFromEventsMatchesIm2ColEvents pins the tape-replay
// pattern rebuild against the forward's extraction: for every geometry and
// rate, expanding the input-space event list must yield exactly the pattern
// Im2ColEvents records while filling the dense column matrix.
func TestIm2ColPatternFromEventsMatchesIm2ColEvents(t *testing.T) {
	geoms := []struct{ c, h, w, k, stride, pad int }{
		{3, 7, 7, 3, 1, 1},
		{2, 8, 8, 3, 2, 1},
		{4, 5, 6, 1, 1, 0},
		{1, 9, 9, 5, 2, 2},
		{2, 6, 6, 3, 3, 0},
	}
	for _, g := range geoms {
		for _, rate := range []float64{0, 0.1, 0.5, 1} {
			r := rng.New(91 + uint64(rate*100) + uint64(g.k*g.stride))
			src := spikeInput(g.c, g.h, g.w, rate, r)
			oh := ConvOutSize(g.h, g.k, g.stride, g.pad)
			ow := ConvOutSize(g.w, g.k, g.stride, g.pad)
			ckk := g.c * g.k * g.k
			dst := make([]float32, ckk*oh*ow)
			wantPtr := make([]int32, ckk+1)
			wantIdx, binary := Im2ColEvents(dst, src, g.c, g.h, g.w, g.k, g.k, g.stride, g.pad, oh, ow, wantPtr, nil)
			if !binary {
				t.Fatal("binary input rejected")
			}
			// The input-space event list: ascending flat indices of non-zeros.
			var flat []int32
			for i, v := range src {
				if v != 0 {
					flat = append(flat, int32(i))
				}
			}
			gotPtr := make([]int32, ckk+1)
			gotIdx := Im2ColPatternFromEvents(flat, g.c, g.h, g.w, g.k, g.k, g.stride, g.pad, oh, ow, gotPtr, nil)
			for i, p := range wantPtr {
				if gotPtr[i] != p {
					t.Fatalf("%+v rate %v: rowPtr[%d] = %d, want %d", g, rate, i, gotPtr[i], p)
				}
			}
			if len(gotIdx) != len(wantIdx) {
				t.Fatalf("%+v rate %v: %d events, want %d", g, rate, len(gotIdx), len(wantIdx))
			}
			for i, j := range wantIdx {
				if gotIdx[i] != j {
					t.Fatalf("%+v rate %v: event %d = col %d, want %d", g, rate, i, gotIdx[i], j)
				}
			}
		}
	}
}

func TestIm2ColEventsRejectsNonBinary(t *testing.T) {
	const c, h, w, k = 2, 4, 4, 3
	oh := ConvOutSize(h, k, 1, 1)
	ow := ConvOutSize(w, k, 1, 1)
	r := rng.New(31)
	src := spikeInput(c, h, w, 0.3, r)
	src[5] = 0.5 // analog value: not a spike tensor
	dst := make([]float32, c*k*k*oh*ow)
	want := make([]float32, len(dst))
	Im2Col(want, src, c, h, w, k, k, 1, 1, oh, ow)
	rowPtr := make([]int32, c*k*k+1)
	_, binary := Im2ColEvents(dst, src, c, h, w, k, k, 1, 1, oh, ow, rowPtr, nil)
	if binary {
		t.Fatal("non-binary input reported as binary")
	}
	// The expansion itself must still be complete and correct.
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst[%d] = %v, want %v after non-binary bail", i, dst[i], want[i])
		}
	}
}
