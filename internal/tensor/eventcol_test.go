package tensor

import (
	"testing"

	"ndsnn/internal/rng"
)

// spikeInput builds a [c,h,w] binary sample with the given firing rate.
func spikeInput(c, h, w int, rate float64, r *rng.RNG) []float32 {
	src := make([]float32, c*h*w)
	for i := range src {
		if r.Float64() < rate {
			src[i] = 1
		}
	}
	return src
}

func TestIm2ColOccupancyMatchesIm2Col(t *testing.T) {
	const c, h, w, k, stride, pad = 3, 7, 7, 3, 1, 1
	oh := ConvOutSize(h, k, stride, pad)
	ow := ConvOutSize(w, k, stride, pad)
	p := oh * ow
	for _, rate := range []float64{0, 0.01, 0.1, 0.5, 1} {
		r := rng.New(11 + uint64(rate*100))
		src := spikeInput(c, h, w, rate, r)
		want := make([]float32, c*k*k*p)
		Im2Col(want, src, c, h, w, k, k, stride, pad, oh, ow)
		got := make([]float32, len(want))
		colActive := make([]bool, p)
		active := Im2ColOccupancy(got, src, c, h, w, k, k, stride, pad, oh, ow, colActive)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("rate %v: dst[%d] = %v, want %v", rate, i, got[i], want[i])
			}
		}
		count := 0
		for j := 0; j < p; j++ {
			any := false
			for q := 0; q < c*k*k; q++ {
				if want[q*p+j] != 0 {
					any = true
					break
				}
			}
			if any != colActive[j] {
				t.Fatalf("rate %v: colActive[%d] = %v, want %v", rate, j, colActive[j], any)
			}
			if any {
				count++
			}
		}
		if count != active {
			t.Fatalf("rate %v: active count %d, want %d", rate, active, count)
		}
	}
}

func TestIm2ColEventsMatchesIm2Col(t *testing.T) {
	const c, h, w, k, stride, pad = 4, 6, 6, 3, 2, 1
	oh := ConvOutSize(h, k, stride, pad)
	ow := ConvOutSize(w, k, stride, pad)
	p := oh * ow
	ckk := c * k * k
	for _, rate := range []float64{0, 0.05, 0.5, 1} {
		r := rng.New(21 + uint64(rate*100))
		src := spikeInput(c, h, w, rate, r)
		want := make([]float32, ckk*p)
		Im2Col(want, src, c, h, w, k, k, stride, pad, oh, ow)
		got := make([]float32, len(want))
		rowPtr := make([]int32, ckk+1)
		colIdx, binary := Im2ColEvents(got, src, c, h, w, k, k, stride, pad, oh, ow, rowPtr, nil)
		if !binary {
			t.Fatalf("rate %v: binary input reported as non-binary", rate)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("rate %v: dst[%d] = %v, want %v", rate, i, got[i], want[i])
			}
		}
		// The events must enumerate exactly the non-zero positions, grouped
		// by row in ascending column order.
		e := 0
		for q := 0; q < ckk; q++ {
			if int(rowPtr[q]) != e {
				t.Fatalf("rate %v: rowPtr[%d] = %d, want %d", rate, q, rowPtr[q], e)
			}
			for j := 0; j < p; j++ {
				if want[q*p+j] == 0 {
					continue
				}
				if e >= len(colIdx) || int(colIdx[e]) != j {
					t.Fatalf("rate %v: event %d: got col %v, want (%d,%d)", rate, e, colIdx[e:], q, j)
				}
				e++
			}
		}
		if e != len(colIdx) || int(rowPtr[ckk]) != e {
			t.Fatalf("rate %v: %d events recorded, want %d (rowPtr end %d)", rate, len(colIdx), e, rowPtr[ckk])
		}
	}
}

func TestIm2ColEventsRejectsNonBinary(t *testing.T) {
	const c, h, w, k = 2, 4, 4, 3
	oh := ConvOutSize(h, k, 1, 1)
	ow := ConvOutSize(w, k, 1, 1)
	r := rng.New(31)
	src := spikeInput(c, h, w, 0.3, r)
	src[5] = 0.5 // analog value: not a spike tensor
	dst := make([]float32, c*k*k*oh*ow)
	want := make([]float32, len(dst))
	Im2Col(want, src, c, h, w, k, k, 1, 1, oh, ow)
	rowPtr := make([]int32, c*k*k+1)
	_, binary := Im2ColEvents(dst, src, c, h, w, k, k, 1, 1, oh, ow, rowPtr, nil)
	if binary {
		t.Fatal("non-binary input reported as binary")
	}
	// The expansion itself must still be complete and correct.
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst[%d] = %v, want %v after non-binary bail", i, dst[i], want[i])
		}
	}
}
