package tensor

import "fmt"

// MatMul returns a·b for a of shape [m,k] and b of shape [k,n].
func MatMul(a, b *Tensor) *Tensor {
	m, k := dims2(a, "MatMul a")
	k2, n := dims2(b, "MatMul b")
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", k, k2))
	}
	out := New(m, n)
	MatMulInto(out, a, b, false)
	return out
}

// MatMulInto computes dst = a·b, or dst += a·b when accumulate is true.
// dst must have shape [m,n].
func MatMulInto(dst, a, b *Tensor, accumulate bool) {
	m, k := dims2(a, "MatMul a")
	k2, n := dims2(b, "MatMul b")
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", k, k2))
	}
	dm, dn := dims2(dst, "MatMul dst")
	if dm != m || dn != n {
		panic(fmt.Sprintf("tensor: MatMul dst shape [%d,%d], want [%d,%d]", dm, dn, m, n))
	}
	ad, bd, od := a.Data, b.Data, dst.Data
	ParallelFor(m, k*n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			orow := od[i*n : (i+1)*n]
			if !accumulate {
				for j := range orow {
					orow[j] = 0
				}
			}
			arow := ad[i*k : (i+1)*k]
			for l, av := range arow {
				if av == 0 {
					continue
				}
				brow := bd[l*n : (l+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
}

// MatMulABT returns a·bᵀ for a of shape [m,k] and b of shape [n,k].
func MatMulABT(a, b *Tensor) *Tensor {
	m, k := dims2(a, "MatMulABT a")
	n, k2 := dims2(b, "MatMulABT b")
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulABT inner dims %d vs %d", k, k2))
	}
	out := New(m, n)
	MatMulABTInto(out, a, b, false)
	return out
}

// MatMulABTInto computes dst = a·bᵀ, or dst += a·bᵀ when accumulate is true.
func MatMulABTInto(dst, a, b *Tensor, accumulate bool) {
	m, k := dims2(a, "MatMulABT a")
	n, k2 := dims2(b, "MatMulABT b")
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulABT inner dims %d vs %d", k, k2))
	}
	dm, dn := dims2(dst, "MatMulABT dst")
	if dm != m || dn != n {
		panic(fmt.Sprintf("tensor: MatMulABT dst shape [%d,%d], want [%d,%d]", dm, dn, m, n))
	}
	ad, bd, od := a.Data, b.Data, dst.Data
	ParallelFor(m, k*n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := ad[i*k : (i+1)*k]
			for j := 0; j < n; j++ {
				brow := bd[j*k : (j+1)*k]
				var s float32
				for l, av := range arow {
					s += av * brow[l]
				}
				if accumulate {
					od[i*n+j] += s
				} else {
					od[i*n+j] = s
				}
			}
		}
	})
}

// MatMulATB returns aᵀ·b for a of shape [k,m] and b of shape [k,n].
func MatMulATB(a, b *Tensor) *Tensor {
	k, m := dims2(a, "MatMulATB a")
	k2, n := dims2(b, "MatMulATB b")
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulATB inner dims %d vs %d", k, k2))
	}
	out := New(m, n)
	MatMulATBInto(out, a, b, false)
	return out
}

// MatMulATBInto computes dst = aᵀ·b, or dst += aᵀ·b when accumulate is true.
func MatMulATBInto(dst, a, b *Tensor, accumulate bool) {
	k, m := dims2(a, "MatMulATB a")
	k2, n := dims2(b, "MatMulATB b")
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulATB inner dims %d vs %d", k, k2))
	}
	dm, dn := dims2(dst, "MatMulATB dst")
	if dm != m || dn != n {
		panic(fmt.Sprintf("tensor: MatMulATB dst shape [%d,%d], want [%d,%d]", dm, dn, m, n))
	}
	ad, bd, od := a.Data, b.Data, dst.Data
	ParallelFor(m, k*n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			orow := od[i*n : (i+1)*n]
			if !accumulate {
				for j := range orow {
					orow[j] = 0
				}
			}
			for l := 0; l < k; l++ {
				av := ad[l*m+i]
				if av == 0 {
					continue
				}
				brow := bd[l*n : (l+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
}

// MatVec returns a·x for a of shape [m,k] and x of length k (any shape with
// k elements). The result has shape [m].
func MatVec(a, x *Tensor) *Tensor {
	m, k := dims2(a, "MatVec a")
	if x.Size() != k {
		panic(fmt.Sprintf("tensor: MatVec x has %d elements, want %d", x.Size(), k))
	}
	out := New(m)
	ad, xd, od := a.Data, x.Data, out.Data
	ParallelFor(m, k, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := ad[i*k : (i+1)*k]
			var s float32
			for l, v := range row {
				s += v * xd[l]
			}
			od[i] = s
		}
	})
	return out
}

func dims2(t *Tensor, what string) (int, int) {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: %s must be 2-D, got shape %v", what, t.shape))
	}
	return t.shape[0], t.shape[1]
}
