package tensor

// Serial GEMM variants. The convolution layer parallelizes across the batch
// dimension and calls these single-threaded kernels per sample, avoiding
// nested goroutine fan-out.

// MatMulSerialInto computes dst = a·b (or += when accumulate) on the calling
// goroutine. Shapes as in MatMulInto.
func MatMulSerialInto(dst, a, b *Tensor, accumulate bool) {
	m, k := dims2(a, "MatMulSerial a")
	_, n := dims2(b, "MatMulSerial b")
	ad, bd, od := a.Data, b.Data, dst.Data
	for i := 0; i < m; i++ {
		orow := od[i*n : (i+1)*n]
		if !accumulate {
			for j := range orow {
				orow[j] = 0
			}
		}
		arow := ad[i*k : (i+1)*k]
		for l, av := range arow {
			if av == 0 {
				continue
			}
			brow := bd[l*n : (l+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulABTSerialInto computes dst = a·bᵀ (or += when accumulate) serially.
// a: [m,k], b: [n,k], dst: [m,n].
func MatMulABTSerialInto(dst, a, b *Tensor, accumulate bool) {
	m, k := dims2(a, "MatMulABTSerial a")
	n, _ := dims2(b, "MatMulABTSerial b")
	ad, bd, od := a.Data, b.Data, dst.Data
	for i := 0; i < m; i++ {
		arow := ad[i*k : (i+1)*k]
		for j := 0; j < n; j++ {
			brow := bd[j*k : (j+1)*k]
			var s float32
			for l, av := range arow {
				s += av * brow[l]
			}
			if accumulate {
				od[i*n+j] += s
			} else {
				od[i*n+j] = s
			}
		}
	}
}

// MatMulATBSerialInto computes dst = aᵀ·b (or += when accumulate) serially.
// a: [k,m], b: [k,n], dst: [m,n].
func MatMulATBSerialInto(dst, a, b *Tensor, accumulate bool) {
	k, m := dims2(a, "MatMulATBSerial a")
	_, n := dims2(b, "MatMulATBSerial b")
	ad, bd, od := a.Data, b.Data, dst.Data
	if !accumulate {
		for i := range od {
			od[i] = 0
		}
	}
	for l := 0; l < k; l++ {
		brow := bd[l*n : (l+1)*n]
		for i := 0; i < m; i++ {
			av := ad[l*m+i]
			if av == 0 {
				continue
			}
			orow := od[i*n : (i+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}
