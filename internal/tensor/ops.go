package tensor

import "fmt"

func assertSameShape(op string, a, b *Tensor) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.shape, b.shape))
	}
}

// Add returns a new tensor a + b.
func Add(a, b *Tensor) *Tensor {
	assertSameShape("Add", a, b)
	out := New(a.shape...)
	for i, v := range a.Data {
		out.Data[i] = v + b.Data[i]
	}
	return out
}

// Sub returns a new tensor a - b.
func Sub(a, b *Tensor) *Tensor {
	assertSameShape("Sub", a, b)
	out := New(a.shape...)
	for i, v := range a.Data {
		out.Data[i] = v - b.Data[i]
	}
	return out
}

// Mul returns a new tensor with the elementwise product a * b.
func Mul(a, b *Tensor) *Tensor {
	assertSameShape("Mul", a, b)
	out := New(a.shape...)
	for i, v := range a.Data {
		out.Data[i] = v * b.Data[i]
	}
	return out
}

// AddInPlace sets t = t + o.
func (t *Tensor) AddInPlace(o *Tensor) {
	assertSameShape("AddInPlace", t, o)
	for i, v := range o.Data {
		t.Data[i] += v
	}
}

// SubInPlace sets t = t - o.
func (t *Tensor) SubInPlace(o *Tensor) {
	assertSameShape("SubInPlace", t, o)
	for i, v := range o.Data {
		t.Data[i] -= v
	}
}

// MulInPlace sets t = t ⊙ o (elementwise).
func (t *Tensor) MulInPlace(o *Tensor) {
	assertSameShape("MulInPlace", t, o)
	for i, v := range o.Data {
		t.Data[i] *= v
	}
}

// Scale multiplies every element of t by s.
func (t *Tensor) Scale(s float32) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// AXPY sets t = t + alpha*x.
func (t *Tensor) AXPY(alpha float32, x *Tensor) {
	assertSameShape("AXPY", t, x)
	for i, v := range x.Data {
		t.Data[i] += alpha * v
	}
}

// Apply replaces every element v with fn(v).
func (t *Tensor) Apply(fn func(float32) float32) {
	for i, v := range t.Data {
		t.Data[i] = fn(v)
	}
}

// Map returns a new tensor whose elements are fn applied to t's elements.
func Map(t *Tensor, fn func(float32) float32) *Tensor {
	out := New(t.shape...)
	for i, v := range t.Data {
		out.Data[i] = fn(v)
	}
	return out
}

// Sum returns the sum of all elements, accumulated in float64 for stability.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += float64(v)
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 { return t.Sum() / float64(len(t.Data)) }

// Max returns the maximum element value.
func (t *Tensor) Max() float32 {
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element value.
func (t *Tensor) Min() float32 {
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// ArgMaxRow returns, for a 2-D tensor, the column index of the maximum value
// in row r (ties resolve to the lowest index).
func (t *Tensor) ArgMaxRow(r int) int {
	if len(t.shape) != 2 {
		panic("tensor: ArgMaxRow requires a 2-D tensor")
	}
	cols := t.shape[1]
	row := t.Data[r*cols : (r+1)*cols]
	best, bestIdx := row[0], 0
	for j, v := range row[1:] {
		if v > best {
			best = v
			bestIdx = j + 1
		}
	}
	return bestIdx
}

// CountNonZero returns the number of elements that are exactly non-zero.
func (t *Tensor) CountNonZero() int {
	n := 0
	for _, v := range t.Data {
		if v != 0 {
			n++
		}
	}
	return n
}

// Dot returns the inner product of a and b, accumulated in float64.
func Dot(a, b *Tensor) float64 {
	assertSameShape("Dot", a, b)
	s := 0.0
	for i, v := range a.Data {
		s += float64(v) * float64(b.Data[i])
	}
	return s
}

// Transpose2D returns the transpose of a 2-D tensor as a new tensor.
func Transpose2D(t *Tensor) *Tensor {
	if len(t.shape) != 2 {
		panic("tensor: Transpose2D requires a 2-D tensor")
	}
	rows, cols := t.shape[0], t.shape[1]
	out := New(cols, rows)
	const block = 32
	for i0 := 0; i0 < rows; i0 += block {
		iMax := i0 + block
		if iMax > rows {
			iMax = rows
		}
		for j0 := 0; j0 < cols; j0 += block {
			jMax := j0 + block
			if jMax > cols {
				jMax = cols
			}
			for i := i0; i < iMax; i++ {
				for j := j0; j < jMax; j++ {
					out.Data[j*rows+i] = t.Data[i*cols+j]
				}
			}
		}
	}
	return out
}
