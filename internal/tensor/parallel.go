package tensor

import (
	"runtime"
	"sync"
)

// minParallelWork is the smallest number of inner iterations worth spawning a
// goroutine for; below this the scheduling overhead dominates.
const minParallelWork = 2048

// ParallelFor splits [0, n) into contiguous chunks and runs fn(lo, hi) on
// each, using up to GOMAXPROCS goroutines. work is an estimate of the inner
// cost per index used to decide whether parallelism pays off; callers that do
// substantial work per index (e.g. a full GEMM row) should pass that inner
// loop length.
func ParallelFor(n, work int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	procs := runtime.GOMAXPROCS(0)
	if procs > n {
		procs = n
	}
	if procs <= 1 || n*work < minParallelWork {
		fn(0, n)
		return
	}
	chunk := (n + procs - 1) / procs
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
