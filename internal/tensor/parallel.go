package tensor

import "runtime"

// MinParallelWork is the smallest number of scalar inner operations worth
// splitting across workers; below it scheduling overhead dominates. It is a
// variable (previously a constant) so benchmark sweeps can chart the
// crossover and latency-sensitive callers can tune it; 0 or negative
// restores the default. Not intended to be changed concurrently with running
// kernels.
var MinParallelWork = 2048

func minWork() int {
	if MinParallelWork <= 0 {
		return 2048
	}
	return MinParallelWork
}

// parallelWorthIt reports whether n iterations of `work` inner operations
// each clear the MinParallelWork bar. Phrased as a division so the check
// cannot overflow at any magnitude: on large layers n·work exceeds int
// ranges (e.g. a 512-filter conv hands ParallelFor work ≈ OutC·ckk·p ≈ 2^31
// per sample), and the old product form wrapped negative and silently forced
// the serial path.
func parallelWorthIt(n, work int) bool {
	if work < 1 {
		work = 1
	}
	need := (int64(minWork()) + int64(work) - 1) / int64(work)
	return int64(n) >= need
}

// ParallelFor splits [0, n) into contiguous chunks and runs fn(lo, hi) on
// each, using up to GOMAXPROCS workers from the persistent pool. work is an
// estimate of the inner cost per index used to decide whether parallelism
// pays off; callers that do substantial work per index (e.g. a full GEMM
// row) should pass that inner loop length. Chunk boundaries depend only on n
// and GOMAXPROCS, never on scheduling.
func ParallelFor(n, work int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	procs := runtime.GOMAXPROCS(0)
	if procs > n {
		procs = n
	}
	if procs <= 1 || !parallelWorthIt(n, work) {
		fn(0, n)
		return
	}
	chunk := (n + procs - 1) / procs
	tasks := (n + chunk - 1) / chunk
	run(tasks, func(t int) {
		lo := t * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	})
}

// ParallelForStriped splits [0, n) into exactly `strips` contiguous chunks
// and runs fn(strip, lo, hi) on each concurrently, passing the strip index so
// scatter-style kernels can give every strip a private accumulator (or a
// disjoint destination band) and merge in fixed strip order. Unlike
// ParallelFor, the partition is controlled by the caller, not GOMAXPROCS:
// results that depend on the chunking (float summation grouping, band
// boundaries) are therefore reproducible on any machine for a given strip
// count. Strips beyond n collapse (every index runs exactly once; empty
// strips are not invoked).
func ParallelForStriped(n, strips int, fn func(strip, lo, hi int)) {
	if n <= 0 || strips < 1 {
		return
	}
	if strips > n {
		strips = n
	}
	if strips == 1 {
		fn(0, 0, n)
		return
	}
	chunk := (n + strips - 1) / strips
	tasks := (n + chunk - 1) / chunk
	run(tasks, func(t int) {
		lo := t * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		fn(t, lo, hi)
	})
}

// ParallelStrips runs fn(strip) for strip = 0..strips-1 concurrently on the
// worker pool — the primitive under kernels whose per-strip work is not an
// index range (e.g. row-banded sparse matrices, where each strip owns a
// pre-bucketed band). fn must confine its writes to strip-private state.
func ParallelStrips(strips int, fn func(strip int)) {
	if strips <= 0 {
		return
	}
	run(strips, fn)
}
