package tensor

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// Tests for the persistent worker pool and the deterministic chunking
// contracts of ParallelFor/ParallelForStriped — including the n·work
// overflow regression and nested submission (which must never deadlock).

func TestParallelForCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 4097} {
		var mu sync.Mutex
		seen := make([]int, n)
		ParallelFor(n, 1<<20, func(lo, hi int) {
			mu.Lock()
			defer mu.Unlock()
			for i := lo; i < hi; i++ {
				seen[i]++
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestParallelForHugeWorkDoesNotOverflow(t *testing.T) {
	// Regression: n·work used to be computed in int and a wrapped negative
	// product forced the serial path (and, with a different wrap, could have
	// mis-sized chunks). A VGG-16-shaped conv hands work ≈ OutC·ckk·p ≈ 2^31
	// with batch n — the product must survive in 64-bit.
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	runtime.GOMAXPROCS(4)
	var calls atomic.Int64
	var covered atomic.Int64
	ParallelFor(8, math.MaxInt/2, func(lo, hi int) {
		calls.Add(1)
		covered.Add(int64(hi - lo))
	})
	if covered.Load() != 8 {
		t.Fatalf("covered %d indices, want 8", covered.Load())
	}
	if calls.Load() < 2 {
		t.Fatalf("huge per-index work was declared not worth parallelizing (%d chunks)", calls.Load())
	}
}

func TestMinParallelWorkTunable(t *testing.T) {
	old := MinParallelWork
	defer func() { MinParallelWork = old }()
	oldProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(oldProcs)
	runtime.GOMAXPROCS(4)

	MinParallelWork = math.MaxInt64 / 4 // nothing qualifies: serial path
	var calls atomic.Int64
	ParallelFor(64, 1024, func(lo, hi int) { calls.Add(1) })
	if calls.Load() != 1 {
		t.Fatalf("raised threshold still split: %d chunks", calls.Load())
	}

	MinParallelWork = 1 // everything qualifies
	calls.Store(0)
	ParallelFor(64, 1, func(lo, hi int) { calls.Add(1) })
	if calls.Load() < 2 {
		t.Fatalf("lowered threshold did not split: %d chunks", calls.Load())
	}
}

func TestParallelForStripedPartition(t *testing.T) {
	for _, tc := range []struct{ n, strips int }{
		{10, 4}, {4, 10}, {1, 1}, {100, 8}, {9, 6},
	} {
		var mu sync.Mutex
		seen := make([]int, tc.n)
		maxStrip := -1
		ParallelForStriped(tc.n, tc.strips, func(strip, lo, hi int) {
			mu.Lock()
			defer mu.Unlock()
			if strip > maxStrip {
				maxStrip = strip
			}
			for i := lo; i < hi; i++ {
				seen[i]++
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d strips=%d: index %d visited %d times", tc.n, tc.strips, i, c)
			}
		}
		if maxStrip >= tc.strips {
			t.Fatalf("n=%d strips=%d: strip index %d out of range", tc.n, tc.strips, maxStrip)
		}
	}
}

func TestParallelForStripedDeterministicPartition(t *testing.T) {
	// The chunk a given index lands in must depend only on (n, strips) —
	// never on GOMAXPROCS — because striped callers key accumulator grouping
	// (and therefore float summation order) on the strip index.
	record := func(n, strips int) []int {
		owner := make([]int, n)
		var mu sync.Mutex
		ParallelForStriped(n, strips, func(strip, lo, hi int) {
			mu.Lock()
			defer mu.Unlock()
			for i := lo; i < hi; i++ {
				owner[i] = strip
			}
		})
		return owner
	}
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	runtime.GOMAXPROCS(1)
	a := record(101, 7)
	runtime.GOMAXPROCS(8)
	b := record(101, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("index %d owned by strip %d at GOMAXPROCS=1 but %d at 8", i, a[i], b[i])
		}
	}
}

func TestNestedParallelForDoesNotDeadlock(t *testing.T) {
	// Batch workers invoking parallel kernels nest pool submissions; the
	// pool must spawn rather than wait when no worker is parked.
	var total atomic.Int64
	ParallelForStriped(8, 8, func(strip, lo, hi int) {
		ParallelForStriped(8, 8, func(s2, l2, h2 int) {
			total.Add(int64(h2 - l2))
		})
	})
	if total.Load() != 64 {
		t.Fatalf("nested coverage %d, want 64", total.Load())
	}
}

func TestWorkerPoolReusesGoroutines(t *testing.T) {
	// Warm the pool, then check that a burst of calls does not keep growing
	// the goroutine count without bound: parked workers are reused.
	for i := 0; i < 32; i++ {
		ParallelStrips(4, func(int) {})
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 1024; i++ {
		ParallelStrips(4, func(int) {})
	}
	after := runtime.NumGoroutine()
	if after > before+maxIdleWorkers {
		t.Fatalf("goroutines grew %d → %d across reused-pool calls", before, after)
	}
}
