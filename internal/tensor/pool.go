package tensor

// MaxPool applies k×k max pooling with the given stride to x of shape
// [B,C,H,W]. It returns the pooled tensor [B,C,OH,OW] and the flat argmax
// index (into x.Data) of each output element, which MaxPoolBackward uses to
// route gradients.
func MaxPool(x *Tensor, k, stride int) (*Tensor, []int32) {
	b, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh := ConvOutSize(h, k, stride, 0)
	ow := ConvOutSize(w, k, stride, 0)
	out := New(b, c, oh, ow)
	idx := make([]int32, out.Size())
	planes := b * c
	ParallelFor(planes, oh*ow*k*k, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			inBase := p * h * w
			outBase := p * oh * ow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					iy0, ix0 := oy*stride, ox*stride
					best := x.Data[inBase+iy0*w+ix0]
					bestIdx := int32(inBase + iy0*w + ix0)
					for ki := 0; ki < k; ki++ {
						iy := iy0 + ki
						if iy >= h {
							break
						}
						rowBase := inBase + iy*w
						for kj := 0; kj < k; kj++ {
							ix := ix0 + kj
							if ix >= w {
								break
							}
							v := x.Data[rowBase+ix]
							if v > best {
								best = v
								bestIdx = int32(rowBase + ix)
							}
						}
					}
					o := outBase + oy*ow + ox
					out.Data[o] = best
					idx[o] = bestIdx
				}
			}
		}
	})
	return out, idx
}

// MaxPoolBackward scatters dy (shape of the pooled output) back to a tensor
// with shape inShape using the argmax indices produced by MaxPool.
func MaxPoolBackward(dy *Tensor, idx []int32, inShape []int) *Tensor {
	dx := New(inShape...)
	for o, g := range dy.Data {
		dx.Data[idx[o]] += g
	}
	return dx
}

// AvgPool applies k×k average pooling with the given stride to x of shape
// [B,C,H,W]. Windows are full (no padding); H and W should be divisible by
// the stride grid for exact behaviour, and ragged edges use the true window
// element count as the divisor.
func AvgPool(x *Tensor, k, stride int) *Tensor {
	b, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh := ConvOutSize(h, k, stride, 0)
	ow := ConvOutSize(w, k, stride, 0)
	out := New(b, c, oh, ow)
	planes := b * c
	ParallelFor(planes, oh*ow*k*k, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			inBase := p * h * w
			outBase := p * oh * ow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					iy0, ix0 := oy*stride, ox*stride
					var sum float32
					count := 0
					for ki := 0; ki < k; ki++ {
						iy := iy0 + ki
						if iy >= h {
							break
						}
						rowBase := inBase + iy*w
						for kj := 0; kj < k; kj++ {
							ix := ix0 + kj
							if ix >= w {
								break
							}
							sum += x.Data[rowBase+ix]
							count++
						}
					}
					out.Data[outBase+oy*ow+ox] = sum / float32(count)
				}
			}
		}
	})
	return out
}

// AvgPoolBackward distributes dy (pooled-output shaped) uniformly back over
// each pooling window of an input with shape inShape.
func AvgPoolBackward(dy *Tensor, k, stride int, inShape []int) *Tensor {
	h, w := inShape[2], inShape[3]
	oh, ow := dy.Dim(2), dy.Dim(3)
	dx := New(inShape...)
	planes := inShape[0] * inShape[1]
	for p := 0; p < planes; p++ {
		inBase := p * h * w
		outBase := p * oh * ow
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				iy0, ix0 := oy*stride, ox*stride
				count := 0
				for ki := 0; ki < k && iy0+ki < h; ki++ {
					for kj := 0; kj < k && ix0+kj < w; kj++ {
						count++
					}
				}
				g := dy.Data[outBase+oy*ow+ox] / float32(count)
				for ki := 0; ki < k && iy0+ki < h; ki++ {
					rowBase := inBase + (iy0+ki)*w
					for kj := 0; kj < k && ix0+kj < w; kj++ {
						dx.Data[rowBase+ix0+kj] += g
					}
				}
			}
		}
	}
	return dx
}
