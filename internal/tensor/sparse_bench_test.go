package tensor_test

// Dense-vs-CSR kernel benchmarks on a VGG-16-shaped layer: 512 filters over
// 512×3×3 patches ([512, 4608] weights) on a 4×4 deep-stage feature map.
// "Train" measures the per-sample GEMM trio one training step runs — forward
// (W·col), backward-data (Wᵀ·dy) and backward-weight (dy·colᵀ, restricted to
// active positions on the CSR path) — which is where the paper's "training
// FLOPs ∝ density" claim must show up as wall-clock.
//
// This file is an external test package: the CSR kernels live in
// internal/sparse, which imports tensor, so an in-package benchmark would be
// an import cycle.

import (
	"fmt"
	"testing"

	"ndsnn/internal/rng"
	"ndsnn/internal/sparse"
	"ndsnn/internal/tensor"
)

const (
	vggRows  = 512  // filters
	vggCols  = 4608 // 512·3·3 patch
	vggPatch = 16   // 4×4 feature map
)

var benchSparsities = []float64{0.50, 0.90, 0.99}

type gemmOperands struct {
	w     *tensor.Tensor // [rows, cols] masked weights
	csr   *sparse.CSR
	colT  *tensor.Tensor // [cols, patch] im2col columns
	dy    *tensor.Tensor // [rows, patch] output gradient
	y     *tensor.Tensor // [rows, patch]
	dcolT *tensor.Tensor // [cols, patch]
	dw    *tensor.Tensor // [rows, cols]
	vals  []float32
}

func makeOperands(sparsity float64) *gemmOperands {
	r := rng.New(uint64(1000 * (1 + sparsity)))
	o := &gemmOperands{
		w:     tensor.New(vggRows, vggCols),
		colT:  tensor.New(vggCols, vggPatch),
		dy:    tensor.New(vggRows, vggPatch),
		y:     tensor.New(vggRows, vggPatch),
		dcolT: tensor.New(vggCols, vggPatch),
		dw:    tensor.New(vggRows, vggCols),
	}
	mask := tensor.New(vggRows, vggCols)
	for i := range o.w.Data {
		if r.Float64() >= sparsity {
			mask.Data[i] = 1
			o.w.Data[i] = r.NormFloat32()
		}
	}
	for i := range o.colT.Data {
		o.colT.Data[i] = r.NormFloat32()
	}
	for i := range o.dy.Data {
		o.dy.Data[i] = r.NormFloat32()
	}
	o.csr = sparse.EncodeCSRWithMask(o.w, mask)
	o.vals = make([]float32, o.csr.NNZ())
	return o
}

func (o *gemmOperands) denseTrainStep() {
	tensor.MatMulSerialInto(o.y, o.w, o.colT, false)
	tensor.MatMulABTSerialInto(o.dw, o.dy, o.colT, true)
	tensor.MatMulATBSerialInto(o.dcolT, o.w, o.dy, false)
}

func (o *gemmOperands) csrTrainStep() {
	sparse.CSRMatMulSerialInto(o.y, o.csr, o.colT, false)
	sparse.CSRGradABTSerial(o.vals, o.csr, o.dy, o.colT)
	sparse.CSRMatMulATBSerialInto(o.dcolT, o.csr, o.dy, false)
}

func BenchmarkSparseGEMMForward(b *testing.B) {
	for _, s := range benchSparsities {
		o := makeOperands(s)
		b.Run(fmt.Sprintf("dense/%02.0f", 100*s), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tensor.MatMulSerialInto(o.y, o.w, o.colT, false)
			}
		})
		b.Run(fmt.Sprintf("csr/%02.0f", 100*s), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sparse.CSRMatMulSerialInto(o.y, o.csr, o.colT, false)
			}
		})
	}
}

func BenchmarkSparseGEMMTrainStep(b *testing.B) {
	for _, s := range benchSparsities {
		o := makeOperands(s)
		b.Run(fmt.Sprintf("dense/%02.0f", 100*s), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o.denseTrainStep()
			}
		})
		b.Run(fmt.Sprintf("csr/%02.0f", 100*s), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o.csrTrainStep()
			}
		})
	}
}
