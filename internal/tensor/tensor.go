// Package tensor implements the dense float32 tensor substrate used by every
// other package in this repository: n-dimensional row-major arrays with the
// elementwise, GEMM, convolution (im2col) and pooling kernels needed to train
// spiking neural networks with BPTT on a CPU.
//
// The package deliberately keeps a small surface: a Tensor is a shape plus a
// flat []float32, operations are explicit functions/methods (no lazy graphs),
// and the heavy kernels (GEMM, im2col) parallelize across goroutines.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense, row-major, n-dimensional array of float32.
// The zero value is not usable; construct tensors with New or FromSlice.
type Tensor struct {
	shape []int
	// Data is the backing storage in row-major order. It is exported so hot
	// loops in other packages can index it directly.
	Data []float32
}

// New returns a zero-filled tensor with the given shape.
// It panics if any dimension is non-positive.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromSlice wraps data (without copying) in a tensor of the given shape.
// It panics if len(data) does not match the shape's element count.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: FromSlice data length %d does not match shape %v (%d elements)", len(data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), Data: data}
}

func checkShape(shape []int) int {
	if len(shape) == 0 {
		panic("tensor: empty shape")
	}
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int { return append([]int(nil), t.shape...) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// NumDims returns the number of dimensions.
func (t *Tensor) NumDims() int { return len(t.shape) }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.Data) }

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i, d := range t.shape {
		if o.shape[i] != d {
			return false
		}
	}
	return true
}

// Offset returns the flat index of the element at the given coordinates.
func (t *Tensor) Offset(idx ...int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: Offset got %d indices for %d dims", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range for dim %d (size %d)", x, i, t.shape[i]))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// At returns the element at the given coordinates.
func (t *Tensor) At(idx ...int) float32 { return t.Data[t.Offset(idx...)] }

// Set stores v at the given coordinates.
func (t *Tensor) Set(v float32, idx ...int) { t.Data[t.Offset(idx...)] = v }

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.Data, t.Data)
	return c
}

// CopyFrom copies o's data into t. The shapes must match in element count.
func (t *Tensor) CopyFrom(o *Tensor) {
	if len(t.Data) != len(o.Data) {
		panic("tensor: CopyFrom size mismatch")
	}
	copy(t.Data, o.Data)
}

// Reshape returns a view sharing t's data with a new shape.
// It panics if the element counts differ.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := checkShape(shape)
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elements) to %v (%d elements)", t.shape, len(t.Data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), Data: t.Data}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// String renders a compact description (shape and a few leading values);
// it is intended for debugging and error messages, not serialization.
func (t *Tensor) String() string {
	k := len(t.Data)
	if k > 8 {
		k = 8
	}
	return fmt.Sprintf("Tensor%v%v…", t.shape, t.Data[:k])
}

// HasNaN reports whether any element is NaN or ±Inf. Trainers use this as a
// failure-injection guard: a diverged run is reported instead of silently
// producing garbage accuracy.
func (t *Tensor) HasNaN() bool {
	for _, v := range t.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return true
		}
	}
	return false
}
