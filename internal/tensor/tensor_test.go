package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"ndsnn/internal/rng"
)

func almostEq(a, b, tol float32) bool {
	return float32(math.Abs(float64(a-b))) <= tol
}

func randTensor(r *rng.RNG, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = r.NormFloat32()
	}
	return t
}

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3, 4)
	if x.Size() != 24 {
		t.Fatalf("Size = %d, want 24", x.Size())
	}
	for i, v := range x.Data {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	for _, shape := range [][]int{{}, {0}, {2, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%v) did not panic", shape)
				}
			}()
			New(shape...)
		}()
	}
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong length did not panic")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestAtSetOffset(t *testing.T) {
	x := New(2, 3, 4)
	x.Set(7.5, 1, 2, 3)
	if got := x.At(1, 2, 3); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	if off := x.Offset(1, 2, 3); off != 1*12+2*4+3 {
		t.Fatalf("Offset = %d, want 23", off)
	}
}

func TestOffsetOutOfRangePanics(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Offset did not panic")
		}
	}()
	x.Offset(0, 2)
}

func TestCloneIndependence(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	c := x.Clone()
	c.Data[0] = 99
	if x.Data[0] != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	v := x.Reshape(3, 2)
	v.Data[0] = 42
	if x.Data[0] != 42 {
		t.Fatal("Reshape does not share storage")
	}
	if v.Dim(0) != 3 || v.Dim(1) != 2 {
		t.Fatalf("Reshape shape = %v", v.Shape())
	}
}

func TestReshapeWrongCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad Reshape did not panic")
		}
	}()
	New(2, 3).Reshape(7)
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 4)
	b := FromSlice([]float32{10, 20, 30, 40}, 4)
	sum := Add(a, b)
	for i, want := range []float32{11, 22, 33, 44} {
		if sum.Data[i] != want {
			t.Fatalf("Add[%d] = %v, want %v", i, sum.Data[i], want)
		}
	}
	diff := Sub(b, a)
	for i, want := range []float32{9, 18, 27, 36} {
		if diff.Data[i] != want {
			t.Fatalf("Sub[%d] = %v, want %v", i, diff.Data[i], want)
		}
	}
	prod := Mul(a, b)
	for i, want := range []float32{10, 40, 90, 160} {
		if prod.Data[i] != want {
			t.Fatalf("Mul[%d] = %v, want %v", i, prod.Data[i], want)
		}
	}
}

func TestInPlaceOps(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := FromSlice([]float32{3, 5}, 2)
	a.AddInPlace(b)
	if a.Data[0] != 4 || a.Data[1] != 7 {
		t.Fatalf("AddInPlace = %v", a.Data)
	}
	a.SubInPlace(b)
	if a.Data[0] != 1 || a.Data[1] != 2 {
		t.Fatalf("SubInPlace = %v", a.Data)
	}
	a.MulInPlace(b)
	if a.Data[0] != 3 || a.Data[1] != 10 {
		t.Fatalf("MulInPlace = %v", a.Data)
	}
	a.Scale(2)
	if a.Data[0] != 6 || a.Data[1] != 20 {
		t.Fatalf("Scale = %v", a.Data)
	}
	a.AXPY(0.5, b)
	if a.Data[0] != 7.5 || a.Data[1] != 22.5 {
		t.Fatalf("AXPY = %v", a.Data)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with mismatched shapes did not panic")
		}
	}()
	Add(New(2, 2), New(4))
}

func TestAddCommutativeProperty(t *testing.T) {
	r := rng.New(1)
	f := func(seed uint16) bool {
		rr := rng.New(uint64(seed))
		a := randTensor(rr, 3, 5)
		b := randTensor(rr, 3, 5)
		ab := Add(a, b)
		ba := Add(b, a)
		for i := range ab.Data {
			if ab.Data[i] != ba.Data[i] {
				return false
			}
		}
		return true
	}
	_ = r
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float32{-1, 2, -3, 4}, 2, 2)
	if s := x.Sum(); s != 2 {
		t.Fatalf("Sum = %v, want 2", s)
	}
	if m := x.Mean(); m != 0.5 {
		t.Fatalf("Mean = %v, want 0.5", m)
	}
	if m := x.Max(); m != 4 {
		t.Fatalf("Max = %v, want 4", m)
	}
	if m := x.Min(); m != -3 {
		t.Fatalf("Min = %v, want -3", m)
	}
	if n := x.CountNonZero(); n != 4 {
		t.Fatalf("CountNonZero = %d, want 4", n)
	}
}

func TestArgMaxRow(t *testing.T) {
	x := FromSlice([]float32{0, 5, 3, 9, 1, 2}, 2, 3)
	if i := x.ArgMaxRow(0); i != 1 {
		t.Fatalf("ArgMaxRow(0) = %d, want 1", i)
	}
	if i := x.ArgMaxRow(1); i != 0 {
		t.Fatalf("ArgMaxRow(1) = %d, want 0", i)
	}
}

func TestArgMaxRowTieBreaksLow(t *testing.T) {
	x := FromSlice([]float32{3, 3, 3}, 1, 3)
	if i := x.ArgMaxRow(0); i != 0 {
		t.Fatalf("tie ArgMaxRow = %d, want 0", i)
	}
}

func TestHasNaN(t *testing.T) {
	x := New(3)
	if x.HasNaN() {
		t.Fatal("zero tensor reported NaN")
	}
	x.Data[1] = float32(math.NaN())
	if !x.HasNaN() {
		t.Fatal("NaN not detected")
	}
	y := New(2)
	y.Data[0] = float32(math.Inf(1))
	if !y.HasNaN() {
		t.Fatal("Inf not detected")
	}
}

func TestTranspose2D(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	xt := Transpose2D(x)
	if xt.Dim(0) != 3 || xt.Dim(1) != 2 {
		t.Fatalf("transpose shape = %v", xt.Shape())
	}
	want := []float32{1, 4, 2, 5, 3, 6}
	for i, v := range want {
		if xt.Data[i] != v {
			t.Fatalf("transpose[%d] = %v, want %v", i, xt.Data[i], v)
		}
	}
}

func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed))
		rows := r.Intn(40) + 1
		cols := r.Intn(40) + 1
		x := randTensor(r, rows, cols)
		y := Transpose2D(Transpose2D(x))
		for i := range x.Data {
			if x.Data[i] != y.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func naiveMatMul(a, b *Tensor) *Tensor {
	m, k := a.Dim(0), a.Dim(1)
	n := b.Dim(1)
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for l := 0; l < k; l++ {
				s += a.Data[i*k+l] * b.Data[l*n+j]
			}
			out.Data[i*n+j] = s
		}
	}
	return out
}

func TestMatMulAgainstNaive(t *testing.T) {
	r := rng.New(42)
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {5, 7, 3}, {16, 16, 16}, {33, 65, 17}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := randTensor(r, m, k)
		b := randTensor(r, k, n)
		got := MatMul(a, b)
		want := naiveMatMul(a, b)
		for i := range want.Data {
			if !almostEq(got.Data[i], want.Data[i], 1e-4) {
				t.Fatalf("MatMul %v: element %d = %v, want %v", dims, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	r := rng.New(7)
	a := randTensor(r, 4, 4)
	id := New(4, 4)
	for i := 0; i < 4; i++ {
		id.Data[i*4+i] = 1
	}
	got := MatMul(a, id)
	for i := range a.Data {
		if got.Data[i] != a.Data[i] {
			t.Fatal("A·I != A")
		}
	}
}

func TestMatMulABT(t *testing.T) {
	r := rng.New(9)
	a := randTensor(r, 6, 5)
	b := randTensor(r, 7, 5)
	got := MatMulABT(a, b)
	want := naiveMatMul(a, Transpose2D(b))
	for i := range want.Data {
		if !almostEq(got.Data[i], want.Data[i], 1e-4) {
			t.Fatalf("MatMulABT element %d = %v, want %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestMatMulATB(t *testing.T) {
	r := rng.New(10)
	a := randTensor(r, 5, 6)
	b := randTensor(r, 5, 7)
	got := MatMulATB(a, b)
	want := naiveMatMul(Transpose2D(a), b)
	for i := range want.Data {
		if !almostEq(got.Data[i], want.Data[i], 1e-4) {
			t.Fatalf("MatMulATB element %d = %v, want %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestMatMulAccumulate(t *testing.T) {
	r := rng.New(11)
	a := randTensor(r, 3, 4)
	b := randTensor(r, 4, 2)
	dst := randTensor(r, 3, 2)
	base := dst.Clone()
	MatMulInto(dst, a, b, true)
	prod := naiveMatMul(a, b)
	for i := range dst.Data {
		want := base.Data[i] + prod.Data[i]
		if !almostEq(dst.Data[i], want, 1e-4) {
			t.Fatalf("accumulate element %d = %v, want %v", i, dst.Data[i], want)
		}
	}
}

func TestMatMulInnerDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatMul with bad inner dims did not panic")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

func TestMatVec(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	x := FromSlice([]float32{1, 0, -1}, 3)
	y := MatVec(a, x)
	if y.Data[0] != -2 || y.Data[1] != -2 {
		t.Fatalf("MatVec = %v, want [-2 -2]", y.Data)
	}
}

func TestDot(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{4, 5, 6}, 3)
	if d := Dot(a, b); d != 32 {
		t.Fatalf("Dot = %v, want 32", d)
	}
}

func TestMatMulDistributiveProperty(t *testing.T) {
	// A·(B+C) == A·B + A·C within float tolerance.
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed))
		m, k, n := r.Intn(8)+1, r.Intn(8)+1, r.Intn(8)+1
		a := randTensor(r, m, k)
		b := randTensor(r, k, n)
		c := randTensor(r, k, n)
		left := MatMul(a, Add(b, c))
		right := Add(MatMul(a, b), MatMul(a, c))
		for i := range left.Data {
			if !almostEq(left.Data[i], right.Data[i], 1e-3) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
