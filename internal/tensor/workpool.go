package tensor

import (
	"sync"
	"sync/atomic"
)

// Persistent worker pool behind ParallelFor/ParallelForStriped. The previous
// implementation spawned a fresh goroutine per chunk per call; on kernels
// invoked thousands of times per training step the spawn/exit churn is
// measurable and, worse, unbounded fan-out composes badly with nested
// parallelism (batch workers invoking parallel kernels). The pool keeps a
// bounded free list of parked goroutines: submit hands a task to a parked
// worker when one is available and spawns otherwise, so submission never
// blocks — nested parallel sections cannot deadlock, they just borrow more
// workers. Workers park themselves back on the free list after each task and
// retire when the list is full, so the steady-state goroutine count tracks
// the peak concurrency actually requested, not call volume.
//
// Determinism note: the pool schedules *which goroutine* runs a chunk, never
// *what* the chunks are. Chunk boundaries are computed by the caller from
// (n, chunk count) alone, so results that depend only on the chunk partition
// — e.g. the striped kernels in internal/sparse — are reproducible across
// runs and machines regardless of how the pool interleaves execution.

// maxIdleWorkers bounds the parked-goroutine free list. Past this, finishing
// workers exit instead of parking. 64 comfortably covers GOMAXPROCS on the
// hosts this engine targets plus one level of nesting.
const maxIdleWorkers = 64

var idleWorkers = make(chan chan func(), maxIdleWorkers)

// Pool utilization counters. poolTasks counts every task handed to a pool
// worker; poolSpawns counts the subset that had to spawn a fresh goroutine
// because the free list was empty. spawns/tasks is therefore the pool's miss
// rate: ~0 once the parked-worker population has warmed up to the workload's
// peak concurrency, rising when nesting or GOMAXPROCS growth outruns it.
var poolTasks, poolSpawns atomic.Int64

// PoolStats is a point-in-time snapshot of the worker pool's counters.
type PoolStats struct {
	// Tasks is the cumulative number of tasks handed to pool workers (the
	// calling goroutine's task-0 share of each run is not handed off and not
	// counted).
	Tasks int64
	// Spawns is how many of those tasks spawned a new goroutine instead of
	// reusing a parked one.
	Spawns int64
	// Idle is the number of currently parked workers.
	Idle int
}

// ReadPoolStats snapshots the worker pool's utilization counters. The
// counters are monotonic over the process lifetime; subtract two snapshots to
// meter an interval.
func ReadPoolStats() PoolStats {
	return PoolStats{
		Tasks:  poolTasks.Load(),
		Spawns: poolSpawns.Load(),
		Idle:   len(idleWorkers),
	}
}

// submit runs fn on a pool worker: a parked one when available, a freshly
// spawned one otherwise. It never blocks on worker availability.
func submit(fn func()) {
	poolTasks.Add(1)
	select {
	case w := <-idleWorkers:
		w <- fn
	default:
		poolSpawns.Add(1)
		w := make(chan func())
		go worker(w)
		w <- fn
	}
}

// worker executes tasks from its private channel, re-parking itself on the
// free list between tasks and exiting when the list is full.
func worker(w chan func()) {
	for fn := range w {
		fn()
		select {
		case idleWorkers <- w:
		default:
			return
		}
	}
}

// run executes fn(0..tasks-1) concurrently — task 0 on the calling
// goroutine (saving one handoff), the rest on pool workers — and returns
// when all complete.
func run(tasks int, fn func(task int)) {
	if tasks <= 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(tasks - 1)
	for t := 1; t < tasks; t++ {
		t := t
		submit(func() {
			defer wg.Done()
			fn(t)
		})
	}
	fn(0)
	wg.Wait()
}
