package testutil

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"ndsnn/internal/tensor"
)

// Golden-fixture record/replay: a fixture is a JSON file mapping names to
// tensors (shape + base64-encoded little-endian float32 bits, so values
// round-trip exactly). Tests record fixtures once from a trusted reference
// engine and thereafter compare the current engine against them within a
// small absolute tolerance — bit-exactness across machines is not promised
// because Go may contract multiply-adds into FMAs differently per
// architecture, but the engines under test agree to well under 1e-5.
//
// To re-record after an intentional numeric change:
//
//	go test ./internal/... -run TestName -update
//
// and review the fixture diff like any other code change.

var updateFixtures = flag.Bool("update", false, "rewrite golden fixtures from the current engine instead of comparing against them")

// UpdateFixtures reports whether the test run was started with -update.
func UpdateFixtures() bool { return *updateFixtures }

// fixtureTensor is one tensor in the JSON encoding.
type fixtureTensor struct {
	Shape []int `json:"shape"`
	// Data is base64(little-endian IEEE-754 float32 bits), row-major.
	Data string `json:"data"`
}

// fixtureFile is the on-disk schema.
type fixtureFile struct {
	// Note records provenance: which engine and configuration produced the
	// values, so a reader knows what the fixture is an oracle for.
	Note    string                   `json:"note,omitempty"`
	Tensors map[string]fixtureTensor `json:"tensors"`
}

func encodeTensor(x *tensor.Tensor) fixtureTensor {
	buf := make([]byte, 4*len(x.Data))
	for i, v := range x.Data {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	return fixtureTensor{
		Shape: append([]int(nil), x.Shape()...),
		Data:  base64.StdEncoding.EncodeToString(buf),
	}
}

func decodeTensor(name string, ft fixtureTensor) (*tensor.Tensor, error) {
	buf, err := base64.StdEncoding.DecodeString(ft.Data)
	if err != nil {
		return nil, fmt.Errorf("fixture tensor %q: %w", name, err)
	}
	out := tensor.New(ft.Shape...)
	if len(buf) != 4*len(out.Data) {
		return nil, fmt.Errorf("fixture tensor %q: %d data bytes for shape %v (want %d)",
			name, len(buf), ft.Shape, 4*len(out.Data))
	}
	for i := range out.Data {
		out.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return out, nil
}

// WriteFixture records tensors to path (creating parent directories),
// overwriting any existing fixture. note documents provenance and is stored
// in the file.
func WriteFixture(t *testing.T, path, note string, tensors map[string]*tensor.Tensor) {
	t.Helper()
	ff := fixtureFile{Note: note, Tensors: make(map[string]fixtureTensor, len(tensors))}
	for name, x := range tensors {
		ff.Tensors[name] = encodeTensor(x)
	}
	blob, err := json.MarshalIndent(&ff, "", " ")
	if err != nil {
		t.Fatalf("fixture %s: marshal: %v", path, err)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatalf("fixture %s: mkdir: %v", path, err)
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		t.Fatalf("fixture %s: write: %v", path, err)
	}
	t.Logf("recorded fixture %s (%d tensors)", path, len(tensors))
}

// ReadFixture loads a fixture previously recorded with WriteFixture.
func ReadFixture(t *testing.T, path string) map[string]*tensor.Tensor {
	t.Helper()
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("fixture %s: %v (run with -update to record it)", path, err)
	}
	var ff fixtureFile
	if err := json.Unmarshal(blob, &ff); err != nil {
		t.Fatalf("fixture %s: unmarshal: %v", path, err)
	}
	out := make(map[string]*tensor.Tensor, len(ff.Tensors))
	for name, ft := range ff.Tensors {
		x, err := decodeTensor(name, ft)
		if err != nil {
			t.Fatalf("fixture %s: %v", path, err)
		}
		out[name] = x
	}
	return out
}

// CompareFixture checks got against want (a loaded fixture): identical key
// sets, identical shapes, and every element within tol absolutely. label
// prefixes failure messages with the caller's configuration.
func CompareFixture(t *testing.T, label string, want, got map[string]*tensor.Tensor, tol float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: fixture has %d tensors, engine produced %d", label, len(want), len(got))
	}
	names := make([]string, 0, len(want))
	for name := range want {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		w, g := want[name], got[name]
		if g == nil {
			t.Fatalf("%s: engine produced no tensor %q", label, name)
		}
		if !shapeEq(w.Shape(), g.Shape()) {
			t.Fatalf("%s: tensor %q shape %v, fixture has %v", label, name, g.Shape(), w.Shape())
		}
		var worst float64
		var worstAt int
		for i := range w.Data {
			d := math.Abs(float64(w.Data[i]) - float64(g.Data[i]))
			if d > worst {
				worst, worstAt = d, i
			}
		}
		if worst > tol {
			t.Errorf("%s: tensor %q differs from fixture by %v at flat index %d (tolerance %v)",
				label, name, worst, worstAt, tol)
		}
	}
}

func shapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
