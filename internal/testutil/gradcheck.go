// Package testutil provides shared test helpers, most importantly a
// finite-difference gradient checker for the temporally-unrolled layer
// protocol. It lives outside the test files so the layers, snn and models
// packages can all reuse it.
package testutil

import (
	"math"
	"testing"

	"ndsnn/internal/layers"
	"ndsnn/internal/rng"
	"ndsnn/internal/tensor"
)

// GradCheckConfig controls a gradient check.
type GradCheckConfig struct {
	// InShape is the input tensor shape (including batch dimension).
	InShape []int
	// Timesteps is the number of Forward/Backward steps (BPTT depth).
	Timesteps int
	// Eps is the finite-difference step (default 1e-2).
	Eps float64
	// Tol is the max allowed |analytic-numeric| / max(1, |numeric|)
	// (default 2e-2; float32 arithmetic is noisy).
	Tol float64
	// MaxChecksPerTensor bounds how many elements are probed per tensor
	// (default 24).
	MaxChecksPerTensor int
	// Seed seeds input/coefficient generation.
	Seed uint64
	// SkipInputs disables the input-gradient check (e.g. for layers whose
	// input gradient is intentionally approximate).
	SkipInputs bool
}

func (c *GradCheckConfig) fill() {
	if c.Eps == 0 {
		c.Eps = 1e-2
	}
	if c.Tol == 0 {
		c.Tol = 2e-2
	}
	if c.MaxChecksPerTensor == 0 {
		c.MaxChecksPerTensor = 24
	}
	if c.Timesteps == 0 {
		c.Timesteps = 3
	}
	if c.Seed == 0 {
		c.Seed = 12345
	}
}

// GradCheck validates a layer's Backward against central finite differences
// of a linear probe loss L = Σ_t <c_t, layer.Forward(x_t)>. It checks both
// parameter gradients and input gradients.
func GradCheck(t *testing.T, name string, layer layers.Layer, cfg GradCheckConfig) {
	t.Helper()
	cfg.fill()
	r := rng.New(cfg.Seed)

	xs := make([]*tensor.Tensor, cfg.Timesteps)
	for i := range xs {
		xs[i] = tensor.New(cfg.InShape...)
		for j := range xs[i].Data {
			xs[i].Data[j] = r.NormFloat32()
		}
	}

	// Dry run to discover output shapes, then build probe coefficients.
	layer.Reset()
	var outShapes [][]int
	for _, x := range xs {
		out := layer.Forward(x.Clone(), false)
		outShapes = append(outShapes, out.Shape())
	}
	layer.Reset()
	cs := make([]*tensor.Tensor, cfg.Timesteps)
	for i := range cs {
		cs[i] = tensor.New(outShapes[i]...)
		for j := range cs[i].Data {
			cs[i].Data[j] = r.NormFloat32()
		}
	}

	lossOf := func() float64 {
		layer.Reset()
		total := 0.0
		for ti, x := range xs {
			out := layer.Forward(x.Clone(), true)
			for j, v := range out.Data {
				total += float64(cs[ti].Data[j]) * float64(v)
			}
		}
		layer.Reset()
		return total
	}

	// Analytic pass.
	layer.Reset()
	for _, p := range layer.Params() {
		p.ZeroGrad()
	}
	for _, x := range xs {
		layer.Forward(x.Clone(), true)
	}
	dxs := make([]*tensor.Tensor, cfg.Timesteps)
	for ti := cfg.Timesteps - 1; ti >= 0; ti-- {
		dxs[ti] = layer.Backward(cs[ti].Clone())
	}
	layer.Reset()

	check := func(kind string, analytic float64, perturb func(delta float32)) {
		t.Helper()
		perturb(float32(cfg.Eps))
		up := lossOf()
		perturb(float32(-2 * cfg.Eps))
		down := lossOf()
		perturb(float32(cfg.Eps))
		numeric := (up - down) / (2 * cfg.Eps)
		denom := math.Max(1, math.Abs(numeric))
		if math.Abs(analytic-numeric)/denom > cfg.Tol {
			t.Errorf("%s/%s: analytic %v vs numeric %v", name, kind, analytic, numeric)
		}
	}

	for _, p := range layer.Params() {
		idxs := sampleIndices(r, p.W.Size(), cfg.MaxChecksPerTensor)
		for _, i := range idxs {
			i := i
			check(p.Name, float64(p.Grad.Data[i]), func(d float32) { p.W.Data[i] += d })
		}
	}
	if !cfg.SkipInputs {
		for ti := range xs {
			idxs := sampleIndices(r, xs[ti].Size(), cfg.MaxChecksPerTensor/2+1)
			for _, i := range idxs {
				ti, i := ti, i
				check("input", float64(dxs[ti].Data[i]), func(d float32) { xs[ti].Data[i] += d })
			}
		}
	}
}

func sampleIndices(r *rng.RNG, n, maxChecks int) []int {
	if n <= maxChecks {
		idxs := make([]int, n)
		for i := range idxs {
			idxs[i] = i
		}
		return idxs
	}
	return r.Choice(n, maxChecks)
}
