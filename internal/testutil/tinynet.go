package testutil

import (
	"ndsnn/internal/layers"
	"ndsnn/internal/rng"
	"ndsnn/internal/snn"
)

// TinyNet builds a small spiking CNN for 3×16×16 inputs:
// conv(8)+BN+LIF → pool → conv(16)+BN+LIF → pool → FC. It is large enough
// for sparse-training dynamics to matter (~9k weights) and small enough for
// integration tests to train in well under a second per epoch.
func TinyNet(classes, timesteps int, seed uint64) *snn.Network {
	r := rng.New(seed)
	neuron := snn.DefaultNeuron()
	return &snn.Network{
		T: timesteps,
		Layers: []layers.Layer{
			layers.NewConv2d("conv1", 3, 8, 3, 1, 1, false, r),
			layers.NewBatchNorm("conv1.bn", 8),
			neuron.New(),
			layers.NewMaxPool2d(2, 2),
			layers.NewConv2d("conv2", 8, 16, 3, 1, 1, false, r),
			layers.NewBatchNorm("conv2.bn", 16),
			neuron.New(),
			layers.NewMaxPool2d(2, 2),
			layers.NewFlatten(),
			layers.NewLinear("fc", 16*4*4, classes, true, r),
		},
	}
}
