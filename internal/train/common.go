package train

import (
	"ndsnn/internal/metrics"
)

// Common bundles the training hyperparameters shared by every method
// (NDSNN and all baselines), mirroring the paper's setup: SGD with momentum
// 0.9 and weight decay 5e-4 under cosine-annealed learning rate.
type Common struct {
	Epochs    int
	BatchSize int
	// LR is the initial learning rate (the paper uses 3e-1 at batch 128);
	// LRMin is the cosine floor.
	LR, LRMin   float64
	Momentum    float64
	WeightDecay float64
	// MaxBatches caps optimizer steps per epoch (0 = full epoch).
	MaxBatches int
	// EvalBatch is the evaluation batch size (defaults to BatchSize).
	EvalBatch int
	// Seed drives batch shuffling and any stochastic method decisions.
	Seed uint64
}

// WithDefaults fills unset fields with the paper-aligned defaults.
func (c Common) WithDefaults() Common {
	if c.Epochs == 0 {
		c.Epochs = 5
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.LR == 0 {
		c.LR = 0.1
	}
	if c.Momentum == 0 {
		c.Momentum = 0.9
	}
	if c.WeightDecay == 0 {
		c.WeightDecay = 5e-4
	}
	if c.EvalBatch == 0 {
		c.EvalBatch = c.BatchSize
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Result is the uniform outcome of a training run.
type Result struct {
	// History holds per-epoch statistics in training order (for multi-phase
	// methods such as LTH it concatenates all phases, so its length is the
	// true total training effort).
	History []EpochStats
	// TestAcc is the final test accuracy in [0,1].
	TestAcc float64
	// FinalSparsity is the overall prunable-weight sparsity at the end.
	FinalSparsity float64
	// Trajectory is the per-epoch (sparsity, spike rate, …) record used by
	// the Fig. 1 and Fig. 5 reproductions.
	Trajectory *metrics.Trajectory
}

// BuildTrajectory converts an epoch history into a metrics trajectory.
func BuildTrajectory(label string, history []EpochStats) *metrics.Trajectory {
	tr := &metrics.Trajectory{Label: label}
	for i, h := range history {
		tr.Add(metrics.EpochPoint{
			Epoch:     i,
			Sparsity:  h.Sparsity,
			Density:   1 - h.Sparsity,
			SpikeRate: h.SpikeRate,
			TrainAcc:  h.TrainAcc,
			Loss:      h.Loss,
		})
	}
	return tr
}
