package train

import (
	"ndsnn/internal/obs"
	"ndsnn/internal/sparse"
	"ndsnn/internal/tape"
	"ndsnn/internal/tensor"
)

// Metrics is the training path's telemetry attachment point. When non-nil,
// every Loop.RunEpoch meters its batch phases (data assembly, forward,
// backward, optimizer step) into per-batch latency histograms, fills the
// phase-timing fields of EpochStats, and exports live gauges for the BPTT
// tape (tape_cache_bytes / tape_peak_bytes), the kernel worker pool
// (pool_tasks_total / pool_spawns_total / pool_idle_workers) and the
// sparse.Workers knob. Nil (the default) keeps the loop free of clock reads.
//
// Like sparse.Workers this is a package-level knob: set it before starting a
// run, not while one is in flight. The facade (Config.Metrics) manages it for
// callers going through ndsnn.TrainModel.
var Metrics *obs.Registry

// trainMeters holds one epoch's recording instruments, resolved from the
// registry at epoch start so a mid-run attach takes effect cleanly at the
// next epoch boundary.
type trainMeters struct {
	data     *obs.Histogram // train_phase_ns{phase="data"}: Dataset.Batch assembly
	forward  *obs.Histogram // train_phase_ns{phase="forward"}: SNN forward + loss
	backward *obs.Histogram // train_phase_ns{phase="backward"}: BPTT + grad hooks
	optim    *obs.Histogram // train_phase_ns{phase="optim"}: SGD step
	epoch    *obs.Histogram // train_epoch_ns: whole-epoch wall clock
}

// attachMeters resolves the epoch's instruments and (re)registers the live
// gauges. Histogram registration is idempotent; gauge/counter-func
// registration replaces by name, so calling this every epoch is safe.
func attachMeters(reg *obs.Registry) *trainMeters {
	if reg == nil {
		return nil
	}
	m := &trainMeters{
		data:     reg.Histogram(`train_phase_ns{phase="data"}`, "ns"),
		forward:  reg.Histogram(`train_phase_ns{phase="forward"}`, "ns"),
		backward: reg.Histogram(`train_phase_ns{phase="backward"}`, "ns"),
		optim:    reg.Histogram(`train_phase_ns{phase="optim"}`, "ns"),
		epoch:    reg.Histogram("train_epoch_ns", "ns"),
	}
	reg.Gauge("tape_cache_bytes", tape.CacheBytes)
	reg.Gauge("tape_peak_bytes", tape.PeakBytes)
	reg.CounterFunc("pool_tasks_total", func() int64 { return tensor.ReadPoolStats().Tasks })
	reg.CounterFunc("pool_spawns_total", func() int64 { return tensor.ReadPoolStats().Spawns })
	reg.Gauge("pool_idle_workers", func() int64 { return int64(tensor.ReadPoolStats().Idle) })
	reg.Gauge("sparse_workers", func() int64 { return int64(sparse.Workers) })
	return m
}
