package train_test

import (
	"testing"

	"ndsnn/internal/obs"
	"ndsnn/internal/sparse"
	"ndsnn/internal/tape"
	"ndsnn/internal/train"
)

// TestLoopPeakBytesDoubleResetSafe is the double-reset regression: RunEpoch
// resets the tape peak meter itself, and a caller defensively calling
// tape.ResetPeak() between epochs must not change what the next epoch
// reports. Both epochs run the same batch partition, so their high-water
// marks are identical byte counts.
func TestLoopPeakBytesDoubleResetSafe(t *testing.T) {
	// Reference: two epochs, no caller intervention.
	ref, _ := newLoop(2, 0)
	refStats0, err := ref.RunEpoch(0)
	if err != nil {
		t.Fatal(err)
	}
	refStats1, err := ref.RunEpoch(1)
	if err != nil {
		t.Fatal(err)
	}
	if refStats0.PeakCacheBytes <= 0 || refStats1.PeakCacheBytes <= 0 {
		t.Fatalf("reference peaks not recorded: %d, %d", refStats0.PeakCacheBytes, refStats1.PeakCacheBytes)
	}

	// Same run (identical seeds, deterministic training), but the caller
	// defensively zeroes the meter between epochs — the "double reset".
	// Reported peaks must be identical to the reference.
	loop, _ := newLoop(2, 0)
	stats0, err := loop.RunEpoch(0)
	if err != nil {
		t.Fatal(err)
	}
	tape.ResetPeak()
	stats1, err := loop.RunEpoch(1)
	if err != nil {
		t.Fatal(err)
	}
	if stats0.PeakCacheBytes != refStats0.PeakCacheBytes || stats1.PeakCacheBytes != refStats1.PeakCacheBytes {
		t.Fatalf("manual ResetPeak changed reporting: got %d/%d, want %d/%d",
			stats0.PeakCacheBytes, stats1.PeakCacheBytes, refStats0.PeakCacheBytes, refStats1.PeakCacheBytes)
	}
}

// TestLoopPhaseTimings: with train.Metrics attached, RunEpoch fills the
// per-phase wall-clock fields, records one histogram sample per batch per
// phase, and exports the tape/pool/sparse gauges. Detached, the fields stay
// zero (the loop reads no clocks).
func TestLoopPhaseTimings(t *testing.T) {
	reg := obs.New()
	prev := train.Metrics
	train.Metrics = reg
	defer func() { train.Metrics = prev }()

	loop, _ := newLoop(1, 0)
	stats, err := loop.RunEpoch(0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ForwardNS <= 0 || stats.BackwardNS <= 0 || stats.OptimNS <= 0 || stats.DataNS <= 0 {
		t.Fatalf("phase timings not populated: %+v", stats)
	}
	snap := reg.Snapshot()
	for _, phase := range []string{"data", "forward", "backward", "optim"} {
		h := snap.Hist(`train_phase_ns{phase="` + phase + `"}`)
		if h == nil || h.Count != uint64(stats.Steps) {
			t.Fatalf("phase %s histogram: %+v, want %d records", phase, h, stats.Steps)
		}
	}
	if h := snap.Hist("train_epoch_ns"); h == nil || h.Count != 1 {
		t.Fatalf("train_epoch_ns: %+v, want 1 record", h)
	}
	if got := snap.Gauge("tape_peak_bytes"); got != stats.PeakCacheBytes {
		t.Fatalf("tape_peak_bytes gauge = %d, want the epoch peak %d", got, stats.PeakCacheBytes)
	}
	if got := snap.Gauge("sparse_workers"); got != int64(sparse.Workers) {
		t.Fatalf("sparse_workers gauge = %d, want %d", got, sparse.Workers)
	}
	names := make(map[string]bool)
	for _, g := range snap.Gauges {
		names[g.Name] = true
	}
	for _, c := range snap.Counters {
		names[c.Name] = true
	}
	for _, want := range []string{"tape_cache_bytes", "pool_idle_workers", "pool_tasks_total", "pool_spawns_total"} {
		if !names[want] {
			t.Fatalf("gauge/counter %s not registered (have %v)", want, names)
		}
	}

	// Detached loop: no clocks, zero phase fields, identical training result.
	train.Metrics = nil
	bare, _ := newLoop(1, 0)
	bareStats, err := bare.RunEpoch(0)
	if err != nil {
		t.Fatal(err)
	}
	if bareStats.DataNS != 0 || bareStats.ForwardNS != 0 || bareStats.BackwardNS != 0 || bareStats.OptimNS != 0 {
		t.Fatalf("unmetered loop reported phase timings: %+v", bareStats)
	}
	if bareStats.Loss != stats.Loss || bareStats.TrainAcc != stats.TrainAcc {
		t.Fatalf("telemetry perturbed training: loss %v vs %v, acc %v vs %v",
			stats.Loss, bareStats.Loss, stats.TrainAcc, bareStats.TrainAcc)
	}
}
