// Package train provides the epoch/batch training machinery shared by the
// NDSNN trainer and every baseline: shuffled mini-batch SGD over an SNN with
// rate-decoded cross-entropy, per-epoch statistics (loss, accuracy, spike
// rate, sparsity), evaluation, and hook points where sparse methods attach
// their mask-update logic.
package train

import (
	"fmt"
	"time"

	"ndsnn/internal/data"
	"ndsnn/internal/layers"
	"ndsnn/internal/loss"
	"ndsnn/internal/opt"
	"ndsnn/internal/rng"
	"ndsnn/internal/snn"
	"ndsnn/internal/tape"
)

// EpochStats summarizes one training epoch.
type EpochStats struct {
	Epoch     int
	Loss      float64
	TrainAcc  float64
	SpikeRate float64
	Sparsity  float64
	LR        float64
	Steps     int
	// Occupancy is the spike occupancy the event-driven engine measured over
	// this epoch's activation matrices (0 when no sparse-capable layer ran
	// event-aware). The engine counters are reset at every epoch start, so
	// this — and anything derived from it, e.g. metrics.MeasuredSynOps — is
	// a per-epoch figure rather than a running total.
	Occupancy float64
	// PeakCacheBytes is the high-water mark of BPTT activation-cache memory
	// (tape.PeakBytes) over the epoch: the measured training-memory cost the
	// sparse temporal tape shrinks.
	PeakCacheBytes int64
	// Phase wall-clock totals for the epoch — data-batch assembly, forward
	// (incl. loss), backward (ZeroGrads+BPTT+grad hooks) and optimizer step.
	// Populated only while train.Metrics is attached; zero otherwise, so the
	// unmetered loop carries no per-batch clock reads.
	DataNS, ForwardNS, BackwardNS, OptimNS int64
}

// Hooks are optional callbacks invoked by the loop.
type Hooks struct {
	// OnBatchStart runs before each batch's forward pass with the step index
	// that batch will become (Step()+1). Sparse trainers use it to decide,
	// per batch, whether the backward pass may restrict weight gradients to
	// active positions or must stay dense for an upcoming growth decision.
	OnBatchStart func(step int)
	// OnGradsReady runs after backprop but before the optimizer step, so a
	// method can add regularizer gradients (ADMM's ρ(W−Z+U) term).
	OnGradsReady func(step int)
	// OnStep runs after every optimizer step with the global step index
	// (sparse methods trigger drop-and-grow here, matching the paper's
	// per-iteration ΔT schedule).
	OnStep func(step int)
	// OnEpochEnd runs after each epoch's statistics are finalized.
	OnEpochEnd func(stats EpochStats)
}

// Loop trains a network for a fixed number of epochs.
type Loop struct {
	Net       *snn.Network
	Dataset   *data.Dataset
	Opt       *opt.SGD
	Schedule  opt.Schedule
	BatchSize int
	Epochs    int
	// MaxBatches caps batches per epoch (0 = no cap); scaled benches use it
	// to bound runtime without changing the schedule semantics.
	MaxBatches int
	Rng        *rng.RNG
	Hooks      Hooks

	step int
}

// Step returns the number of optimizer steps taken so far.
func (l *Loop) Step() int { return l.step }

// StepsPerEpoch returns how many optimizer steps one epoch performs.
func (l *Loop) StepsPerEpoch() int {
	n := (l.Dataset.Train.N() + l.BatchSize - 1) / l.BatchSize
	if l.MaxBatches > 0 && n > l.MaxBatches {
		n = l.MaxBatches
	}
	return n
}

// Run trains for Epochs epochs and returns per-epoch statistics. It fails
// fast with an error if the loss or any parameter diverges to NaN/Inf.
func (l *Loop) Run() ([]EpochStats, error) {
	if l.BatchSize <= 0 {
		return nil, fmt.Errorf("train: batch size %d", l.BatchSize)
	}
	var history []EpochStats
	params := l.Net.Params()
	for epoch := 0; epoch < l.Epochs; epoch++ {
		stats, err := l.RunEpoch(epoch)
		if err != nil {
			return history, err
		}
		_ = params
		history = append(history, stats)
	}
	return history, nil
}

// RunEpoch trains a single epoch (callers composing multi-phase schedules,
// e.g. LTH cycles, drive this directly).
func (l *Loop) RunEpoch(epoch int) (EpochStats, error) {
	lr := l.Schedule.At(epoch)
	l.Opt.LR = lr
	l.Net.ResetSpikeStats()
	// The event-path counters are cumulative since their last reset; without
	// this, per-epoch reports (measured occupancy, MeasuredSynOps) would
	// silently accumulate across every Forward of the run.
	l.Net.ResetEventStats()
	tape.ResetPeak()
	batches := data.ShuffledBatches(l.Dataset.Train.N(), l.BatchSize, l.Rng)
	if l.MaxBatches > 0 && len(batches) > l.MaxBatches {
		batches = batches[:l.MaxBatches]
	}
	var totalLoss float64
	correct, seen := 0, 0
	params := l.Net.Params()
	tm := attachMeters(Metrics)
	var epochStart, t0 time.Time
	var dataNS, forwardNS, backwardNS, optimNS int64
	if tm != nil {
		epochStart = time.Now()
	}
	// tick advances the phase clock and returns the elapsed segment; only
	// called when tm != nil, so the unmetered loop reads no clocks.
	tick := func() int64 {
		now := time.Now()
		d := now.Sub(t0).Nanoseconds()
		t0 = now
		return d
	}
	for _, idxs := range batches {
		if l.Hooks.OnBatchStart != nil {
			l.Hooks.OnBatchStart(l.step + 1)
		}
		if tm != nil {
			t0 = time.Now()
		}
		x, labels := l.Dataset.Batch(&l.Dataset.Train, idxs)
		if tm != nil {
			d := tick()
			dataNS += d
			tm.data.Record(d)
		}
		outs := l.Net.Forward(x, true)
		batchLoss, grads := loss.CrossEntropyRate(outs, labels)
		totalLoss += batchLoss * float64(len(idxs))
		correct += loss.CountCorrect(outs, labels)
		seen += len(idxs)
		if tm != nil {
			d := tick()
			forwardNS += d
			tm.forward.Record(d)
		}
		l.Net.ZeroGrads()
		l.Net.Backward(grads)
		if l.Hooks.OnGradsReady != nil {
			l.Hooks.OnGradsReady(l.step + 1)
		}
		if tm != nil {
			d := tick()
			backwardNS += d
			tm.backward.Record(d)
		}
		l.Opt.Step(params)
		l.step++
		if tm != nil {
			d := tick()
			optimNS += d
			tm.optim.Record(d)
		}
		if l.Hooks.OnStep != nil {
			l.Hooks.OnStep(l.step)
		}
	}
	if tm != nil {
		tm.epoch.Record(time.Since(epochStart).Nanoseconds())
	}
	if seen == 0 {
		return EpochStats{}, fmt.Errorf("train: epoch %d saw no data", epoch)
	}
	stats := EpochStats{
		Epoch:          epoch,
		Loss:           totalLoss / float64(seen),
		TrainAcc:       float64(correct) / float64(seen),
		SpikeRate:      l.Net.SpikeRate(),
		Sparsity:       layers.GlobalSparsity(layers.PrunableParams(params)),
		LR:             lr,
		Steps:          len(batches),
		Occupancy:      l.Net.EventStats().Occupancy(),
		PeakCacheBytes: tape.PeakBytes(),
		DataNS:         dataNS,
		ForwardNS:      forwardNS,
		BackwardNS:     backwardNS,
		OptimNS:        optimNS,
	}
	for _, p := range params {
		if p.W.HasNaN() {
			return stats, fmt.Errorf("train: parameter %s diverged (NaN/Inf) at epoch %d", p.Name, epoch)
		}
	}
	if l.Hooks.OnEpochEnd != nil {
		l.Hooks.OnEpochEnd(stats)
	}
	return stats, nil
}

// Evaluate returns classification accuracy on a split.
func Evaluate(net *snn.Network, d *data.Dataset, split *data.Split, batchSize int) float64 {
	if split.N() == 0 {
		return 0
	}
	correct := 0
	for _, idxs := range data.SequentialBatches(split.N(), batchSize) {
		x, labels := d.Batch(split, idxs)
		outs := net.Forward(x, false)
		correct += loss.CountCorrect(outs, labels)
	}
	return float64(correct) / float64(split.N())
}
