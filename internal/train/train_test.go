package train_test

import (
	"fmt"
	"math"
	"testing"

	"ndsnn/internal/data"
	"ndsnn/internal/layers"
	"ndsnn/internal/opt"
	"ndsnn/internal/rng"
	"ndsnn/internal/sparse"
	"ndsnn/internal/tape"
	"ndsnn/internal/tensor"
	"ndsnn/internal/testutil"
	"ndsnn/internal/train"
)

func newLoop(epochs, maxBatches int) (*train.Loop, *data.Dataset) {
	ds := data.SynthEasy(4, 64, 32, 3)
	net := testutil.TinyNet(4, 2, 9)
	loop := &train.Loop{
		Net: net, Dataset: ds,
		Opt:       opt.NewSGD(0.05, 0.9, 5e-4),
		Schedule:  opt.CosineLR{Base: 0.05, Min: 0.001, Total: epochs},
		BatchSize: 16, Epochs: epochs, MaxBatches: maxBatches,
		Rng: rng.New(4),
	}
	return loop, ds
}

func TestLoopRunsAndRecordsStats(t *testing.T) {
	loop, _ := newLoop(2, 0)
	history, err := loop.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(history) != 2 {
		t.Fatalf("history = %d epochs", len(history))
	}
	for i, h := range history {
		if h.Epoch != i {
			t.Fatalf("epoch numbering wrong: %d at index %d", h.Epoch, i)
		}
		if h.Steps != 4 { // 64 samples / 16 batch
			t.Fatalf("steps = %d, want 4", h.Steps)
		}
		if h.SpikeRate <= 0 || h.SpikeRate >= 1 {
			t.Fatalf("spike rate = %v", h.SpikeRate)
		}
		if h.LR <= 0 {
			t.Fatalf("lr = %v", h.LR)
		}
	}
}

// TestLoopResetsEventStatsPerEpoch pins the per-report-window reset: the
// event-path counters (and anything derived from them, e.g. measured
// occupancy / MeasuredSynOps) must cover one epoch, not accumulate across
// every Network.Forward of the run.
func TestLoopResetsEventStatsPerEpoch(t *testing.T) {
	loop, _ := newLoop(3, 0)
	// Force the sparse-capable layers onto the counting path.
	oldD, oldR := layers.CSRMaxDensity, layers.EventMaxRate
	layers.CSRMaxDensity, layers.EventMaxRate = 1, 1
	defer func() { layers.CSRMaxDensity, layers.EventMaxRate = oldD, oldR }()
	r := rng.New(99)
	for _, p := range layers.PrunableParams(loop.Net.Params()) {
		p.Mask = tensor.New(p.W.Shape()...)
		for i := range p.Mask.Data {
			if r.Float64() < 0.2 {
				p.Mask.Data[i] = 1
			}
		}
		p.ApplyMask()
	}
	defer func() {
		for _, p := range loop.Net.Params() {
			p.InvalidateCSR()
		}
	}()
	var perEpoch []int64
	loop.Hooks.OnEpochEnd = func(stats train.EpochStats) {
		perEpoch = append(perEpoch, loop.Net.EventStats().Forwards)
		if stats.PeakCacheBytes <= 0 {
			t.Errorf("epoch %d: PeakCacheBytes = %d, want > 0 during BPTT", stats.Epoch, stats.PeakCacheBytes)
		}
	}
	if _, err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	if len(perEpoch) != 3 || perEpoch[0] == 0 {
		t.Fatalf("per-epoch forward counters %v", perEpoch)
	}
	// Identical work per epoch ⇒ identical (not growing) counters.
	for i := 1; i < len(perEpoch); i++ {
		if perEpoch[i] != perEpoch[0] {
			t.Fatalf("event counters accumulated across epochs: %v", perEpoch)
		}
	}
}

// TestLoopTapeMeterPerEpoch pins the tape meter's per-epoch semantics, at
// both the serial and parallel kernel settings:
//
//   - CacheBytes returns to its baseline after every epoch — the backward
//     replay pops every record the training forward retained, so nothing
//     leaks across epochs;
//   - PeakCacheBytes is the epoch's own high-water mark, not the run's: a
//     second epoch with intrinsically smaller caches must report a smaller
//     peak. Without the ResetPeak at epoch start it would carry the first
//     epoch's stale maximum.
func TestLoopTapeMeterPerEpoch(t *testing.T) {
	oldW := sparse.Workers
	defer func() { sparse.Workers = oldW }()
	for _, workers := range []int{0, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			sparse.Workers = workers
			loop, _ := newLoop(2, 0)
			base := tape.CacheBytes()
			stats0, err := loop.RunEpoch(0)
			if err != nil {
				t.Fatal(err)
			}
			if got := tape.CacheBytes(); got != base {
				t.Fatalf("epoch 0 retained %d tape bytes after backward replay", got-base)
			}
			if stats0.PeakCacheBytes <= 0 {
				t.Fatalf("epoch 0 PeakCacheBytes = %d, want > 0 during BPTT", stats0.PeakCacheBytes)
			}
			// Shrink the batch 4×: every activation cache shrinks with it, so
			// epoch 1's true peak is well below epoch 0's.
			loop.BatchSize = 4
			stats1, err := loop.RunEpoch(1)
			if err != nil {
				t.Fatal(err)
			}
			if got := tape.CacheBytes(); got != base {
				t.Fatalf("epoch 1 retained %d tape bytes after backward replay", got-base)
			}
			if stats1.PeakCacheBytes <= 0 || stats1.PeakCacheBytes >= stats0.PeakCacheBytes {
				t.Fatalf("epoch 1 PeakCacheBytes = %d, want in (0, %d): the peak meter did not reset with EpochStats",
					stats1.PeakCacheBytes, stats0.PeakCacheBytes)
			}
		})
	}
}

func TestLoopMaxBatchesCapsSteps(t *testing.T) {
	loop, _ := newLoop(1, 2)
	history, err := loop.Run()
	if err != nil {
		t.Fatal(err)
	}
	if history[0].Steps != 2 {
		t.Fatalf("steps = %d, want capped at 2", history[0].Steps)
	}
	if loop.StepsPerEpoch() != 2 {
		t.Fatalf("StepsPerEpoch = %d, want 2", loop.StepsPerEpoch())
	}
}

func TestLoopHooksFire(t *testing.T) {
	loop, _ := newLoop(2, 0)
	var steps, gradReady, epochs int
	loop.Hooks.OnStep = func(step int) { steps++ }
	loop.Hooks.OnGradsReady = func(step int) { gradReady++ }
	loop.Hooks.OnEpochEnd = func(stats train.EpochStats) { epochs++ }
	if _, err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	if steps != 8 || gradReady != 8 {
		t.Fatalf("hooks fired %d/%d times, want 8/8", steps, gradReady)
	}
	if epochs != 2 {
		t.Fatalf("epoch hook fired %d times", epochs)
	}
}

func TestLoopStepCounterIsGlobal(t *testing.T) {
	loop, _ := newLoop(2, 0)
	var last int
	loop.Hooks.OnStep = func(step int) {
		if step != last+1 {
			t.Fatalf("step jumped from %d to %d", last, step)
		}
		last = step
	}
	if _, err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	if last != 8 {
		t.Fatalf("final step = %d, want 8", last)
	}
}

func TestLoopRejectsBadBatchSize(t *testing.T) {
	loop, _ := newLoop(1, 0)
	loop.BatchSize = 0
	if _, err := loop.Run(); err == nil {
		t.Fatal("batch size 0 not rejected")
	}
}

func TestLoopDetectsDivergence(t *testing.T) {
	loop, _ := newLoop(3, 0)
	// An absurd learning rate should blow the run up into NaN, which the
	// loop must report as an error rather than continuing silently.
	loop.Opt.LR = 1e18
	loop.Schedule = opt.CosineLR{Base: 1e18, Min: 1e18, Total: 3}
	if _, err := loop.Run(); err == nil {
		t.Skip("network survived the hostile LR (no NaN produced); divergence guard untestable here")
	}
}

func TestEvaluateAccuracyBounds(t *testing.T) {
	loop, ds := newLoop(2, 0)
	if _, err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	acc := train.Evaluate(loop.Net, ds, &ds.Test, 16)
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy = %v", acc)
	}
}

func TestEvaluateEmptySplit(t *testing.T) {
	loop, ds := newLoop(1, 0)
	empty := &data.Split{}
	if got := train.Evaluate(loop.Net, ds, empty, 8); got != 0 {
		t.Fatalf("empty split accuracy = %v", got)
	}
}

func TestCommonWithDefaults(t *testing.T) {
	c := train.Common{}.WithDefaults()
	if c.Epochs == 0 || c.BatchSize == 0 || c.LR == 0 || c.Momentum == 0 || c.WeightDecay == 0 || c.Seed == 0 {
		t.Fatalf("defaults incomplete: %+v", c)
	}
	if c.EvalBatch != c.BatchSize {
		t.Fatalf("EvalBatch default = %d, want BatchSize", c.EvalBatch)
	}
	// Explicit values survive.
	c2 := train.Common{Epochs: 7, LR: 0.3}.WithDefaults()
	if c2.Epochs != 7 || c2.LR != 0.3 {
		t.Fatal("explicit values overwritten")
	}
}

func TestBuildTrajectory(t *testing.T) {
	hist := []train.EpochStats{
		{Epoch: 0, Sparsity: 0.5, SpikeRate: 0.2, Loss: 1.5, TrainAcc: 0.3},
		{Epoch: 1, Sparsity: 0.7, SpikeRate: 0.15, Loss: 1.2, TrainAcc: 0.5},
	}
	tr := train.BuildTrajectory("x", hist)
	if tr.Label != "x" || len(tr.Points) != 2 {
		t.Fatalf("trajectory %+v", tr)
	}
	if math.Abs(tr.Points[1].Density-0.3) > 1e-9 {
		t.Fatalf("density = %v", tr.Points[1].Density)
	}
}
