// Package ndsnn is a pure-Go reproduction of "Neurogenesis Dynamics-inspired
// Spiking Neural Network Training Acceleration" (Huang et al., DAC 2023).
//
// It provides, entirely on the standard library:
//
//   - a spiking-neural-network training substrate (LIF neurons, surrogate
//     gradients, BPTT, VGG-16 / ResNet-19 / LeNet-5 model zoo);
//   - the paper's contribution — NDSNN dynamic sparse training with a
//     decreasing live-weight population (drop-and-grow on the Eq. 4 cubic
//     sparsity ramp with Eq. 5 cosine death-rate annealing);
//   - the baselines it is evaluated against (Dense, SET, RigL, LTH, ADMM);
//   - the efficiency models (spike-rate-weighted training cost, Sec. III-D
//     memory footprints) and an experiment harness regenerating every table
//     and figure of the paper's evaluation.
//
// The quickest entry point:
//
//	res, err := ndsnn.Train(ndsnn.Config{
//		Method:  ndsnn.NDSNN,
//		Arch:    "vgg16",
//		Dataset: "cifar10",
//		Sparsity: 0.95,
//	})
//
// Datasets are deterministic synthetic stand-ins for CIFAR-10/100 and
// Tiny-ImageNet (see DESIGN.md for the substitution rationale); Scale
// selects how faithful — and how slow — a run is ("unit", "bench", "paper").
package ndsnn

import (
	"fmt"

	"ndsnn/internal/bench"
	"ndsnn/internal/data"
	"ndsnn/internal/layers"
	"ndsnn/internal/metrics"
	"ndsnn/internal/models"
	"ndsnn/internal/obs"
	"ndsnn/internal/snn"
	"ndsnn/internal/sparse"
	"ndsnn/internal/train"
)

// Method selects a training method.
type Method string

// Available methods.
const (
	// Dense trains without sparsification (the accuracy reference).
	Dense Method = "dense"
	// SET is Sparse Evolutionary Training: constant sparsity, magnitude
	// drop, random grow.
	SET Method = "set"
	// RigL is constant-sparsity training with gradient-based growth.
	RigL Method = "rigl"
	// LTH is iterative magnitude pruning with weight rewinding.
	LTH Method = "lth"
	// ADMM is alternating-direction-method-of-multipliers pruning.
	ADMM Method = "admm"
	// NDSNN is the paper's method: dynamic sparse training with a
	// decreasing number of non-zero weights.
	NDSNN Method = "ndsnn"
)

// Config describes one training run.
type Config struct {
	// Method defaults to NDSNN.
	Method Method
	// Arch is "vgg16", "resnet19" or "lenet5" (default "vgg16").
	Arch string
	// Dataset is "cifar10", "cifar100" or "tinyimagenet" (default
	// "cifar10"). All are deterministic synthetic stand-ins.
	Dataset string
	// Sparsity is the target (final) sparsity for sparse methods.
	Sparsity float64
	// InitialSparsity is NDSNN's θᵢ; 0 applies the paper's rule of thumb.
	InitialSparsity float64
	// Timesteps overrides the scale's SNN simulation length when > 0.
	Timesteps int
	// TimeParallelNeurons trains with the ParLIF neuron: every LIF's
	// membrane sequence is computed in one banded filter pass instead of the
	// per-timestep recurrence (same soft-reset dynamics within float
	// tolerance; pays off as Timesteps grows). See snn.ParLIF.
	TimeParallelNeurons bool
	// Scale is "unit", "bench" (default) or "paper".
	Scale string
	// Seed makes the run reproducible (default 1).
	Seed uint64
	// Metrics enables training-path telemetry for TrainModel runs: per-batch
	// phase latency histograms, per-epoch phase totals in the history, and
	// live tape/worker-pool gauges, readable afterwards via Model.Telemetry.
	// Off (false) by default — the training loop then carries no clock reads.
	// Telemetry attaches process-wide for the duration of the run (like
	// SetKernelWorkers), so concurrent metered runs share one registry.
	Metrics bool
}

func (c Config) withDefaults() Config {
	if c.Method == "" {
		c.Method = NDSNN
	}
	if c.Arch == "" {
		c.Arch = "vgg16"
	}
	if c.Dataset == "" {
		c.Dataset = "cifar10"
	}
	if c.Scale == "" {
		c.Scale = "bench"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Sparsity == 0 && c.Method != Dense {
		c.Sparsity = 0.9
	}
	return c
}

// EpochPoint is one epoch of training history.
type EpochPoint struct {
	Epoch         int
	Loss          float64
	TrainAccuracy float64
	Sparsity      float64
	SpikeRate     float64
	LR            float64
}

// Result summarizes a training run.
type Result struct {
	// TestAccuracy is the final test accuracy in [0,1].
	TestAccuracy float64
	// FinalSparsity is the trained model's overall prunable sparsity.
	FinalSparsity float64
	// MeanTrainingSparsity averages sparsity over all training epochs —
	// the quantity behind the paper's training-cost claims.
	MeanTrainingSparsity float64
	// History holds per-epoch statistics (for multi-phase methods such as
	// LTH it spans every phase).
	History []EpochPoint

	traj *metrics.Trajectory
}

func resultFrom(r *train.Result) *Result {
	out := &Result{
		TestAccuracy:         r.TestAcc,
		FinalSparsity:        r.FinalSparsity,
		MeanTrainingSparsity: r.Trajectory.MeanSparsity(),
		traj:                 r.Trajectory,
	}
	for _, h := range r.History {
		out.History = append(out.History, EpochPoint{
			Epoch: h.Epoch, Loss: h.Loss, TrainAccuracy: h.TrainAcc,
			Sparsity: h.Sparsity, SpikeRate: h.SpikeRate, LR: h.LR,
		})
	}
	return out
}

// SetKernelWorkers sets the engine-wide kernel-parallelism knob
// (sparse.Workers): the number of strips individual sparse event kernels —
// conv/linear event forwards, SDDMM weight gradients and compiled inference
// stages — split their work into on the persistent worker pool. 0 (the
// default) keeps every kernel serial, leaving parallelism to the batch
// dimension; a typical setting is runtime.GOMAXPROCS(0), which pays off
// exactly when batches are too narrow to fill the host (small-batch
// training, timestep-fused calls, single-sample inference). Results are
// bit-identical at any setting — the parallel kernels preserve the serial
// summation order (see docs/ARCHITECTURE.md, "Threading model"). Inference
// engines snapshot the knob at compile time; set it before
// CompileInference/CompileQuantizedInference. Not safe to change while
// training or inference is in flight. It returns the previous value.
func SetKernelWorkers(n int) int {
	old := sparse.Workers
	sparse.Workers = n
	return old
}

// Train runs one configuration and returns its result.
func Train(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	res, err := bench.Run(bench.ScaleByName(cfg.Scale), bench.Spec{
		Method: string(cfg.Method), Arch: cfg.Arch, Dataset: cfg.Dataset,
		Sparsity: cfg.Sparsity, InitialSparsity: cfg.InitialSparsity,
		Timesteps: cfg.Timesteps, TimeParallel: cfg.TimeParallelNeurons,
		Seed: cfg.Seed,
	}, nil)
	if err != nil {
		return nil, err
	}
	return resultFrom(res), nil
}

// RelativeTrainingCost returns run's spike-rate-weighted training cost
// relative to a dense reference run (Sec. IV-C): 1.0 means "as expensive as
// the dense run", lower is cheaper.
func RelativeTrainingCost(run, denseRef *Result) (float64, error) {
	if run.traj == nil || denseRef.traj == nil {
		return 0, fmt.Errorf("ndsnn: results lack trajectories (construct them via Train)")
	}
	return metrics.RelativeTrainingCost(run.traj, denseRef.traj)
}

// LayerSparsity describes one prunable tensor of a trained model.
type LayerSparsity struct {
	Name     string
	Shape    []int
	Total    int
	Active   int
	Sparsity float64
}

// Model is a trained network handle exposing deployment utilities.
type Model struct {
	net     *snn.Network
	result  *Result
	dataset *data.Dataset
	reg     *obs.Registry // nil unless trained with Config.Metrics
}

// TrainModel runs a configuration and returns both the result and a Model
// for deployment analysis (CSR export, platform footprints).
func TrainModel(cfg Config) (*Model, *Result, error) {
	cfg = cfg.withDefaults()
	s := bench.ScaleByName(cfg.Scale)
	ds := s.Dataset(cfg.Dataset, 1000+cfg.Seed%7)
	t := s.Timesteps
	if cfg.Timesteps > 0 {
		t = cfg.Timesteps
	}
	neuron := snn.DefaultNeuron()
	neuron.TimeParallel = cfg.TimeParallelNeurons
	net := models.Build(models.Config{
		Arch: cfg.Arch, Classes: ds.Config.Classes,
		InC: ds.Config.C, InH: ds.Config.H, InW: ds.Config.W,
		Timesteps: t, Neuron: neuron,
		Profile: s.Profile, Seed: cfg.Seed*31 + 7,
	})
	var reg *obs.Registry
	if cfg.Metrics {
		reg = obs.New()
		prev := train.Metrics
		train.Metrics = reg
		defer func() { train.Metrics = prev }()
	}
	// Run through the same dispatcher against the same dataset/model seeds
	// so TrainModel(cfg) and Train(cfg) agree.
	res, err := bench.RunOn(s, bench.Spec{
		Method: string(cfg.Method), Arch: cfg.Arch, Dataset: cfg.Dataset,
		Sparsity: cfg.Sparsity, InitialSparsity: cfg.InitialSparsity,
		Timesteps: cfg.Timesteps, TimeParallel: cfg.TimeParallelNeurons,
		Seed: cfg.Seed,
	}, ds, net)
	if err != nil {
		return nil, nil, err
	}
	r := resultFrom(res)
	return &Model{net: net, result: r, dataset: ds, reg: reg}, r, nil
}

// Layers returns the per-layer sparsity census of the trained model.
func (m *Model) Layers() []LayerSparsity {
	var out []LayerSparsity
	for _, p := range layers.PrunableParams(m.net.Params()) {
		out = append(out, LayerSparsity{
			Name: p.Name, Shape: p.W.Shape(), Total: p.W.Size(),
			Active: p.ActiveCount(), Sparsity: p.Sparsity(),
		})
	}
	return out
}

// CSRLayer is one layer exported to compressed sparse row format.
type CSRLayer struct {
	Name string
	CSR  *sparse.CSR
}

// ExportCSR converts every prunable weight tensor to CSR (conv kernels are
// stored as [filters, in·k·k] matrices), the deployment format of the
// paper's Sec. III-D analysis.
func (m *Model) ExportCSR() []CSRLayer {
	var out []CSRLayer
	for _, p := range layers.PrunableParams(m.net.Params()) {
		shape := p.W.Shape()
		rows := shape[0]
		w2d := p.W.Reshape(rows, p.W.Size()/rows)
		out = append(out, CSRLayer{Name: p.Name, CSR: sparse.EncodeCSR(w2d)})
	}
	return out
}

// FootprintMiB returns the deployed-model memory in MiB for a platform
// weight precision ("Loihi" 8-bit, "HICANN" 4-bit, "FPGA-SyncNN" 16-bit),
// computed from the actual exported CSR.
func (m *Model) FootprintMiB(platform string) (float64, error) {
	var bits int
	for _, p := range sparse.Platforms {
		if p.Name == platform {
			bits = p.WeightBits
		}
	}
	if bits == 0 {
		return 0, fmt.Errorf("ndsnn: unknown platform %q", platform)
	}
	var total int64
	for _, l := range m.ExportCSR() {
		total += l.CSR.MemoryBits(bits, sparse.DefaultIndexBits)
	}
	return sparse.BitsToMiB(float64(total)), nil
}

// DenseFootprintMiB returns the dense FP32 size of the same weights.
func (m *Model) DenseFootprintMiB() float64 {
	n := 0
	for _, p := range layers.PrunableParams(m.net.Params()) {
		n += p.W.Size()
	}
	return sparse.BitsToMiB(sparse.DenseFootprintBits(n, sparse.TrainingBits))
}

// Platforms lists the neuromorphic deployment targets of Sec. III-D.
func Platforms() []string {
	var out []string
	for _, p := range sparse.Platforms {
		out = append(out, p.Name)
	}
	return out
}
