package ndsnn

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func unitCfg(method Method, sparsity float64) Config {
	return Config{
		Method: method, Arch: "lenet5", Dataset: "cifar10",
		Sparsity: sparsity, Scale: "unit", Seed: 3,
	}
}

func TestTrainFacadeNDSNN(t *testing.T) {
	res, err := Train(unitCfg(NDSNN, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	if res.TestAccuracy < 0 || res.TestAccuracy > 1 {
		t.Fatalf("accuracy = %v", res.TestAccuracy)
	}
	if math.Abs(res.FinalSparsity-0.9) > 0.02 {
		t.Fatalf("final sparsity = %v", res.FinalSparsity)
	}
	if len(res.History) == 0 {
		t.Fatal("empty history")
	}
	if res.MeanTrainingSparsity <= 0 || res.MeanTrainingSparsity >= 0.9 {
		t.Fatalf("mean training sparsity = %v", res.MeanTrainingSparsity)
	}
}

func TestTrainFacadeDefaults(t *testing.T) {
	// Empty-config defaults resolve (method ndsnn, vgg16/cifar10) — use
	// unit scale to keep the test fast.
	res, err := Train(Config{Scale: "unit"})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.FinalSparsity-0.9) > 0.02 {
		t.Fatalf("default sparsity = %v, want 0.9", res.FinalSparsity)
	}
}

func TestTrainFacadeDeterministic(t *testing.T) {
	a, err := Train(unitCfg(SET, 0.8))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(unitCfg(SET, 0.8))
	if err != nil {
		t.Fatal(err)
	}
	if a.TestAccuracy != b.TestAccuracy || a.FinalSparsity != b.FinalSparsity {
		t.Fatal("same config gave different results")
	}
}

// TestTrainKernelWorkersBitIdentical is the facade-level determinism pin of
// the thread-scalable kernel engine: an entire training run — forwards,
// event replays, SDDMM gradients, drop-and-grow rewires — must be
// bit-identical with kernel-level parallelism on and off, because every
// parallel kernel preserves the serial summation order.
func TestTrainKernelWorkersBitIdentical(t *testing.T) {
	old := SetKernelWorkers(0)
	defer SetKernelWorkers(old)
	a, err := Train(unitCfg(NDSNN, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	SetKernelWorkers(8)
	b, err := Train(unitCfg(NDSNN, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	if a.TestAccuracy != b.TestAccuracy || a.FinalSparsity != b.FinalSparsity {
		t.Fatalf("workers=8 run diverged: acc %v vs %v, sparsity %v vs %v",
			b.TestAccuracy, a.TestAccuracy, b.FinalSparsity, a.FinalSparsity)
	}
	if len(a.History) != len(b.History) {
		t.Fatalf("history lengths diverged: %d vs %d", len(a.History), len(b.History))
	}
	for i := range a.History {
		if a.History[i].Loss != b.History[i].Loss {
			t.Fatalf("epoch %d loss diverged: %v vs %v (parallel kernels must be bit-identical)",
				i, b.History[i].Loss, a.History[i].Loss)
		}
	}
}

func TestRelativeTrainingCostFacade(t *testing.T) {
	dense, err := Train(unitCfg(Dense, 0))
	if err != nil {
		t.Fatal(err)
	}
	nd, err := Train(unitCfg(NDSNN, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	cost, err := RelativeTrainingCost(nd, dense)
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 || cost >= 1 {
		t.Fatalf("NDSNN relative cost = %v, want in (0,1)", cost)
	}
	if _, err := RelativeTrainingCost(&Result{}, dense); err == nil {
		t.Fatal("missing trajectory not rejected")
	}
}

func TestTrainModelDeployment(t *testing.T) {
	m, res, err := TrainModel(unitCfg(NDSNN, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.FinalSparsity-0.9) > 0.02 {
		t.Fatalf("final sparsity = %v", res.FinalSparsity)
	}
	ls := m.Layers()
	if len(ls) == 0 {
		t.Fatal("no layer census")
	}
	totalActive := 0
	total := 0
	for _, l := range ls {
		totalActive += l.Active
		total += l.Total
		if l.Sparsity < 0 || l.Sparsity > 1 {
			t.Fatalf("layer %s sparsity %v", l.Name, l.Sparsity)
		}
	}
	if gotSp := 1 - float64(totalActive)/float64(total); math.Abs(gotSp-0.9) > 0.02 {
		t.Fatalf("census sparsity = %v", gotSp)
	}
	// CSR stores exact non-zeros: at most the active count (regrown
	// connections that never received an update are active but still 0),
	// and close to it.
	nnz := 0
	for _, l := range m.ExportCSR() {
		nnz += l.CSR.NNZ()
	}
	if nnz > totalActive {
		t.Fatalf("CSR nnz = %d exceeds census active = %d", nnz, totalActive)
	}
	if float64(nnz) < 0.9*float64(totalActive) {
		t.Fatalf("CSR nnz = %d far below census active = %d", nnz, totalActive)
	}
	// Platform footprints ordered by precision; sparse beats dense FP32.
	loihi, err := m.FootprintMiB("Loihi")
	if err != nil {
		t.Fatal(err)
	}
	hicann, err := m.FootprintMiB("HICANN")
	if err != nil {
		t.Fatal(err)
	}
	if hicann >= loihi {
		t.Fatalf("4-bit footprint %v not below 8-bit %v", hicann, loihi)
	}
	if loihi >= m.DenseFootprintMiB() {
		t.Fatalf("sparse 8-bit footprint %v not below dense FP32 %v", loihi, m.DenseFootprintMiB())
	}
	if _, err := m.FootprintMiB("TPU"); err == nil {
		t.Fatal("unknown platform not rejected")
	}
}

func TestPlatformsList(t *testing.T) {
	ps := Platforms()
	if len(ps) != 3 {
		t.Fatalf("platforms = %v", ps)
	}
}

func TestRunExperimentUnknownID(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiment("table9", &buf, ExperimentOptions{Scale: "unit"}); err == nil {
		t.Fatal("unknown id not rejected")
	}
}

func TestRunExperimentMemory(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiment("memory", &buf, ExperimentOptions{Scale: "unit"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"vgg16", "resnet19", "Loihi", "HICANN"} {
		if !strings.Contains(out, want) {
			t.Fatalf("memory output missing %q", want)
		}
	}
}

func TestRunExperimentFig1Unit(t *testing.T) {
	var buf bytes.Buffer
	var progressLines int
	err := RunExperiment("fig1", &buf, ExperimentOptions{Scale: "unit", Progress: func(string) { progressLines++ }})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fig.1") {
		t.Fatal("fig1 output missing chart")
	}
	if progressLines != 3 {
		t.Fatalf("progress lines = %d, want 3", progressLines)
	}
}

func TestRunExperimentSparseGEMM(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiment("sparse-gemm", &buf, ExperimentOptions{Scale: "unit"}); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Sparsities []struct {
			Sparsity   float64 `json:"sparsity"`
			Speedup    float64 `json:"speedup"`
			MaxAbsDiff float64 `json:"max_abs_diff"`
		} `json:"sparsities"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("sparse-gemm output is not JSON: %v", err)
	}
	if len(rep.Sparsities) != 3 {
		t.Fatalf("sparse-gemm cells = %d, want 3", len(rep.Sparsities))
	}
	for _, c := range rep.Sparsities {
		if c.MaxAbsDiff > 1e-5 {
			t.Fatalf("sparsity %v: CSR and dense outputs differ by %v", c.Sparsity, c.MaxAbsDiff)
		}
	}
	// Wall-clock on shared CI runners is noisy, so the timing assertion only
	// catches a broken engine: at 99% sparsity the expected margin is ~30x,
	// and CSR landing at less than half dense speed cannot be scheduler
	// jitter.
	if last := rep.Sparsities[len(rep.Sparsities)-1]; last.Speedup < 0.5 {
		t.Fatalf("sparse-gemm @%v: CSR at %.2fx of dense, engine off", last.Sparsity, last.Speedup)
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	for _, id := range ExperimentIDs {
		if _, ok := ExperimentDescription[id]; !ok {
			t.Fatalf("experiment %s has no description", id)
		}
	}
	if len(ExperimentIDs) < 12 {
		t.Fatalf("expected ≥12 experiments, got %d", len(ExperimentIDs))
	}
}

func TestRunExperimentEventDriven(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiment("event-driven", &buf, ExperimentOptions{Scale: "unit"}); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		CSRCrossover float64 `json:"csr_crossover"`
		Cells        []struct {
			SpikeRate    float64 `json:"spike_rate"`
			SpeedupVsCSR float64 `json:"speedup_vs_csr"`
			MaxAbsDiff   float64 `json:"max_abs_diff"`
		} `json:"cells"`
		Network *struct {
			EventCoverage float64 `json:"event_coverage"`
			Occupancy     float64 `json:"occupancy"`
		} `json:"network"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("event-driven output is not JSON: %v", err)
	}
	if len(rep.Cells) != 1 {
		t.Fatalf("event-driven unit cells = %d, want 1", len(rep.Cells))
	}
	// Equivalence is exact by construction; any drift is an engine bug, not
	// noise.
	if d := rep.Cells[0].MaxAbsDiff; d != 0 {
		t.Fatalf("event-driven and dense outputs differ by %v", d)
	}
	// Wall-clock on shared CI runners is noisy; the timing assertion only
	// catches a broken engine (expected margin at 10%% spikes is ~3x).
	if s := rep.Cells[0].SpeedupVsCSR; s < 0.5 {
		t.Fatalf("event kernel at %.2fx of weight-only CSR, engine off", s)
	}
	if rep.CSRCrossover <= 0 || rep.CSRCrossover > 1 {
		t.Fatalf("calibrated crossover %v outside (0,1]", rep.CSRCrossover)
	}
	if rep.Network == nil || rep.Network.EventCoverage <= 0 {
		t.Fatalf("network rollup missing or event path never engaged: %+v", rep.Network)
	}
}
