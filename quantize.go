package ndsnn

import (
	"ndsnn/internal/infer"
	"ndsnn/internal/layers"
	"ndsnn/internal/quant"
	"ndsnn/internal/sparse"
	"ndsnn/internal/tensor"
)

// EvaluateQuantized measures test accuracy with the model's prunable
// weights fake-quantized to the given bit width (symmetric uniform,
// per-tensor scale, zeros preserved) — the deployed-precision accuracy for
// the Sec. III-D platforms (Loihi 8-bit, HICANN 4-bit, FPGA up to 16-bit).
// Evaluation runs through the event-driven engine on up to n test samples
// (0 = all) and, alongside accuracy, returns the engine's measured
// efficiency: synaptic operations per sample (which drop relative to the
// FP32 engine, because weights that quantize to exactly zero are dead
// synapses the engine never touches) and the dense-MAC bound per sample.
// The model's weights are restored afterwards. For true integer execution
// rather than fake quantization, see CompileQuantizedInference.
func (m *Model) EvaluateQuantized(bits, n int) (acc, synOpsPerSample, denseMACsPerSample float64, err error) {
	params := layers.PrunableParams(m.net.Params())
	snapshot := make([]*tensor.Tensor, len(params))
	for i, p := range params {
		snapshot[i] = p.W.Clone()
	}
	defer func() {
		for i, p := range params {
			p.W.CopyFrom(snapshot[i])
			// The cached CSR/CSC encodings were (re)built against the
			// quantized values; drop them so the training path re-encodes
			// from the restored weights.
			p.InvalidateCSR()
		}
	}()
	if _, err := quant.QuantizeParams(params, bits); err != nil {
		return 0, 0, 0, err
	}
	eng, err := infer.Compile(m.net)
	if err != nil {
		return 0, 0, 0, err
	}
	e := &InferenceEngine{eng: eng, ds: m.dataset}
	acc, synOpsPerSample, denseMACsPerSample = e.EvaluateTest(n)
	return acc, synOpsPerSample, denseMACsPerSample, nil
}

// CompileQuantizedInference compiles the trained model into the integer
// event-driven engine: spike-fed conv/linear stages store packed QCSR
// weights (int8 levels with per-output-channel power-of-two scales, two
// levels per byte at 4 bits) and accumulate events in int32, leaving
// integer only at the per-stage requantization affine before the LIF
// threshold compare. Analog-input stages (the direct-encoding first conv,
// stages after average pooling) stay float32; QuantInfo reports the
// coverage and the packed-weight memory. At ≤8 bits the engine's outputs
// are bit-identical to the float engine running on the dequantized weights.
func (m *Model) CompileQuantizedInference(bits int) (*InferenceEngine, error) {
	eng, err := infer.CompileQuantized(m.net, bits)
	if err != nil {
		return nil, err
	}
	return &InferenceEngine{eng: eng, ds: m.dataset}, nil
}

// QuantizedInferenceConfig selects the integer engine's precisions for
// CompileQuantizedInferenceConfig.
type QuantizedInferenceConfig struct {
	// WeightBits is the QCSR weight precision, 2–16.
	WeightBits int
	// ActivationBits, when nonzero (2–16), also quantizes activations onto
	// per-tensor power-of-two grids: the network input passes an explicit
	// requant boundary, grid-fed conv/linear stages accumulate graded
	// integer levels, and power-of-two average pools run as int32 sum +
	// shift. 0 keeps the mixed engine (weights only).
	ActivationBits int
	// FullInteger makes "fully integer" a compile-time guarantee: the
	// compile fails, naming the offending stages, if any compute stage
	// would still run float synaptic arithmetic. Implies ActivationBits=8
	// when unset. Check QuantInfo.AnalogStages == 0 for the runtime view of
	// the same claim.
	FullInteger bool
	// InputMaxAbs is the activation grid's input range (default 1, the
	// dataset pixel range).
	InputMaxAbs float32
}

// CompileQuantizedInferenceConfig compiles the trained model into the
// integer engine under an explicit precision config — the fully-integer
// deployment path when ActivationBits/FullInteger are set. With only
// WeightBits it is exactly CompileQuantizedInference.
func (m *Model) CompileQuantizedInferenceConfig(cfg QuantizedInferenceConfig) (*InferenceEngine, error) {
	eng, err := infer.CompileQuantizedConfig(m.net, infer.QuantConfig{
		WeightBits:     cfg.WeightBits,
		ActivationBits: cfg.ActivationBits,
		FullInteger:    cfg.FullInteger,
		InputMaxAbs:    cfg.InputMaxAbs,
	})
	if err != nil {
		return nil, err
	}
	return &InferenceEngine{eng: eng, ds: m.dataset}, nil
}

// PlatformBits maps the Sec. III-D platform names (see Platforms) to their
// weight precisions. ok is false for unknown platform names — callers
// should surface the name rather than feed a zero width downstream.
func PlatformBits(platform string) (bits int, ok bool) {
	for _, p := range sparse.Platforms {
		if p.Name == platform {
			return p.WeightBits, true
		}
	}
	return 0, false
}
