package ndsnn

import (
	"ndsnn/internal/infer"
	"ndsnn/internal/layers"
	"ndsnn/internal/quant"
	"ndsnn/internal/tensor"
)

// EvaluateQuantized measures test accuracy with the model's prunable
// weights fake-quantized to the given bit width (symmetric uniform,
// per-tensor scale, zeros preserved) — the deployed-precision accuracy for
// the Sec. III-D platforms (Loihi 8-bit, HICANN 4-bit, FPGA up to 16-bit).
// Evaluation runs through the event-driven engine on up to n test samples
// (0 = all); the model's weights are restored afterwards.
func (m *Model) EvaluateQuantized(bits, n int) (float64, error) {
	params := layers.PrunableParams(m.net.Params())
	snapshot := make([]*tensor.Tensor, len(params))
	for i, p := range params {
		snapshot[i] = p.W.Clone()
	}
	defer func() {
		for i, p := range params {
			p.W.CopyFrom(snapshot[i])
		}
	}()
	if _, err := quant.QuantizeParams(params, bits); err != nil {
		return 0, err
	}
	eng, err := infer.Compile(m.net)
	if err != nil {
		return 0, err
	}
	e := &InferenceEngine{eng: eng, ds: m.dataset}
	acc, _, _ := e.EvaluateTest(n)
	return acc, nil
}

// PlatformBits maps the Sec. III-D platform names to their weight
// precisions.
func PlatformBits(platform string) int {
	switch platform {
	case "Loihi":
		return 8
	case "HICANN":
		return 4
	case "FPGA-SyncNN":
		return 16
	default:
		return 0
	}
}
