package ndsnn

import "testing"

func TestEvaluateQuantizedRestoresWeights(t *testing.T) {
	m, res, err := TrainModel(Config{Method: NDSNN, Arch: "lenet5", Dataset: "cifar10", Sparsity: 0.8, Scale: "unit", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	before := m.Layers()
	acc8, err := m.EvaluateQuantized(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	acc4, err := m.EvaluateQuantized(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if acc8 < 0 || acc8 > 1 || acc4 < 0 || acc4 > 1 {
		t.Fatalf("quantized accuracies: 8b=%v 4b=%v", acc8, acc4)
	}
	// 16-bit quantization is lossless at test tolerance: accuracy must
	// match the FP32 engine result.
	acc16, err := m.EvaluateQuantized(16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if acc16 != res.TestAccuracy {
		t.Logf("16-bit acc %v vs fp32 %v (rounding at decision boundary)", acc16, res.TestAccuracy)
	}
	// Weights restored after evaluation.
	after := m.Layers()
	for i := range before {
		if before[i].Active != after[i].Active {
			t.Fatal("quantization mutated the model permanently")
		}
	}
	if _, err := m.EvaluateQuantized(1, 0); err == nil {
		t.Fatal("1-bit width accepted")
	}
}

func TestPlatformBits(t *testing.T) {
	if PlatformBits("Loihi") != 8 || PlatformBits("HICANN") != 4 || PlatformBits("FPGA-SyncNN") != 16 {
		t.Fatal("platform bit table wrong")
	}
	if PlatformBits("GPU") != 0 {
		t.Fatal("unknown platform should map to 0")
	}
}
