package ndsnn

import (
	"testing"

	"ndsnn/internal/layers"
)

func trainTinyModel(t *testing.T) (*Model, *Result) {
	t.Helper()
	m, res, err := TrainModel(Config{Method: NDSNN, Arch: "lenet5", Dataset: "cifar10", Sparsity: 0.8, Scale: "unit", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return m, res
}

func TestEvaluateQuantizedRestoresWeights(t *testing.T) {
	m, res := trainTinyModel(t)
	before := m.Layers()
	acc8, synOps8, dense8, err := m.EvaluateQuantized(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	acc4, _, _, err := m.EvaluateQuantized(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if acc8 < 0 || acc8 > 1 || acc4 < 0 || acc4 > 1 {
		t.Fatalf("quantized accuracies: 8b=%v 4b=%v", acc8, acc4)
	}
	if synOps8 <= 0 || dense8 <= 0 {
		t.Fatalf("quantized evaluation swallowed the efficiency stats: synops=%v denseMACs=%v", synOps8, dense8)
	}
	if synOps8 >= dense8 {
		t.Fatalf("quantized SynOps %v not below the dense-MAC bound %v", synOps8, dense8)
	}
	// 16-bit quantization is lossless at test tolerance: accuracy must
	// match the FP32 engine result.
	acc16, _, _, err := m.EvaluateQuantized(16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if acc16 != res.TestAccuracy {
		t.Logf("16-bit acc %v vs fp32 %v (rounding at decision boundary)", acc16, res.TestAccuracy)
	}
	// Weights restored after evaluation.
	after := m.Layers()
	for i := range before {
		if before[i].Active != after[i].Active {
			t.Fatal("quantization mutated the model permanently")
		}
	}
	if _, _, _, err := m.EvaluateQuantized(1, 0); err == nil {
		t.Fatal("1-bit width accepted")
	}
}

func TestEvaluateQuantizedSynOpsDropWithBits(t *testing.T) {
	// Aggressive quantization rounds more small weights to exactly zero;
	// those synapses are dead and the measured SynOps must drop below the
	// FP32 engine's, monotonically with precision.
	m, _ := trainTinyModel(t)
	eng, err := m.CompileInference()
	if err != nil {
		t.Fatal(err)
	}
	_, fp32SynOps, _ := eng.EvaluateTest(0)
	_, synOps2, _, err := m.EvaluateQuantized(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, synOps16, _, err := m.EvaluateQuantized(16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if synOps2 >= synOps16 {
		t.Fatalf("2-bit SynOps %v not below 16-bit SynOps %v (zero-rounded weights must stop costing work)", synOps2, synOps16)
	}
	if synOps16 > fp32SynOps {
		t.Fatalf("16-bit SynOps %v above FP32 SynOps %v", synOps16, fp32SynOps)
	}
}

func TestEvaluateQuantizedLeavesNoStaleCSRCache(t *testing.T) {
	// Regression for the stale-cache bug: EvaluateQuantized mutates the
	// prunable weights twice (quantize, then restore), and each mutation
	// must drop any cached CSR/CSC encoding — a cache populated from the
	// FP32 weights beforehand must not survive the evaluation, and the
	// restored model must reproduce the FP32 engine exactly.
	m, _ := trainTinyModel(t)
	eng, err := m.CompileInference()
	if err != nil {
		t.Fatal(err)
	}
	accBefore, synOpsBefore, _ := eng.EvaluateTest(0)
	// Populate CSR caches from the FP32 weights (the training-path state a
	// caller would realistically be in).
	cached := 0
	params := layers.PrunableParams(m.net.Params())
	for _, p := range params {
		if p.SparseW() != nil {
			cached++
		}
	}
	if cached == 0 {
		t.Fatal("test setup: no parameter is CSR-eligible")
	}
	if _, _, _, err := m.EvaluateQuantized(2, 0); err != nil {
		t.Fatal(err)
	}
	for _, p := range params {
		if p.CSRCached() {
			t.Fatalf("param %s: CSR cache survived the quantized evaluation", p.Name)
		}
	}
	eng2, err := m.CompileInference()
	if err != nil {
		t.Fatal(err)
	}
	accAfter, synOpsAfter, _ := eng2.EvaluateTest(0)
	if accBefore != accAfter || synOpsBefore != synOpsAfter {
		t.Fatalf("FP32 engine changed across a quantized evaluation: acc %v→%v synops %v→%v",
			accBefore, accAfter, synOpsBefore, synOpsAfter)
	}
}

func TestCompileQuantizedInference(t *testing.T) {
	m, _ := trainTinyModel(t)
	feng, err := m.CompileInference()
	if err != nil {
		t.Fatal(err)
	}
	if feng.QuantInfo() != nil {
		t.Fatal("float engine reports quantization info")
	}
	facc, _, _ := feng.EvaluateTest(0)
	qeng, err := m.CompileQuantizedInference(8)
	if err != nil {
		t.Fatal(err)
	}
	qacc, qsynOps, qdense := qeng.EvaluateTest(0)
	if qacc < 0 || qacc > 1 || qsynOps <= 0 || qdense <= 0 {
		t.Fatalf("int8 engine stats out of range: acc=%v synops=%v dense=%v", qacc, qsynOps, qdense)
	}
	if qacc < facc-0.1 {
		t.Fatalf("int8 engine accuracy %v far below fp32 %v", qacc, facc)
	}
	qi := qeng.QuantInfo()
	if qi == nil || qi.Bits != 8 {
		t.Fatalf("missing quantization info: %+v", qi)
	}
	if qi.QuantizedStages == 0 || qi.QuantizedStages > qi.ComputeStages {
		t.Fatalf("implausible integer coverage: %d of %d stages", qi.QuantizedStages, qi.ComputeStages)
	}
	if qi.FloatValueBytes != 4*qi.PackedValueBytes {
		t.Fatalf("int8 packed-weight reduction not 4x: packed=%d float=%d", qi.PackedValueBytes, qi.FloatValueBytes)
	}
	q4, err := m.CompileQuantizedInference(4)
	if err != nil {
		t.Fatal(err)
	}
	qi4 := q4.QuantInfo()
	if ratio := float64(qi4.FloatValueBytes) / float64(qi4.PackedValueBytes); ratio < 7.5 {
		t.Fatalf("int4 packed-weight reduction %.2fx, want ~8x", ratio)
	}
	if _, err := m.CompileQuantizedInference(0); err == nil {
		t.Fatal("0-bit width accepted")
	}
}

func TestCompileQuantizedInferenceFullInteger(t *testing.T) {
	m, _ := trainTinyModel(t)
	feng, err := m.CompileInference()
	if err != nil {
		t.Fatal(err)
	}
	facc, _, _ := feng.EvaluateTest(0)

	// The mixed engine leaves lenet5's analog-fed stages float …
	mixed, err := m.CompileQuantizedInference(8)
	if err != nil {
		t.Fatal(err)
	}
	if qi := mixed.QuantInfo(); qi.AnalogStages == 0 || qi.ActivationBits != 0 {
		t.Fatalf("mixed engine info implausible: %+v", qi)
	}

	// … and the fully-integer engine closes every one of them.
	full, err := m.CompileQuantizedInferenceConfig(QuantizedInferenceConfig{WeightBits: 8, FullInteger: true})
	if err != nil {
		t.Fatal(err)
	}
	qi := full.QuantInfo()
	if qi == nil || !qi.FullInteger || qi.ActivationBits != 8 || qi.Bits != 8 {
		t.Fatalf("full-integer info not reported: %+v", qi)
	}
	if qi.AnalogStages != 0 {
		t.Fatalf("FullInteger engine reports %d analog stages, want 0", qi.AnalogStages)
	}
	rows := full.StageDTypes()
	if len(rows) == 0 {
		t.Fatal("empty dtype table")
	}
	for _, r := range rows {
		switch r.Kind {
		case "conv", "linear", "avgpool", "affine":
			if !r.Integer {
				t.Fatalf("stage %s (%s %s→%s) still analog in a FullInteger engine", r.Name, r.Kind, r.In, r.Out)
			}
		}
	}
	acc, synOps, dense := full.EvaluateTest(0)
	if acc < facc-0.1 {
		t.Fatalf("full-integer accuracy %v far below fp32 %v", acc, facc)
	}
	if synOps <= 0 || dense <= 0 || synOps >= dense {
		t.Fatalf("full-integer efficiency stats implausible: synops=%v dense=%v", synOps, dense)
	}
	// The float engine exposes the same dtype table, with analog/spike edges.
	if len(feng.StageDTypes()) == 0 {
		t.Fatal("float engine has no dtype table")
	}
}

func TestPlatformBits(t *testing.T) {
	for platform, want := range map[string]int{"Loihi": 8, "HICANN": 4, "FPGA-SyncNN": 16} {
		bits, ok := PlatformBits(platform)
		if !ok || bits != want {
			t.Fatalf("PlatformBits(%q) = %d, %v; want %d, true", platform, bits, ok, want)
		}
	}
	if bits, ok := PlatformBits("GPU"); ok || bits != 0 {
		t.Fatalf("unknown platform accepted: %d, %v", bits, ok)
	}
}
