package ndsnn

import (
	"context"
	"net/http"
	"time"

	"ndsnn/internal/infer"
	"ndsnn/internal/obs"
	"ndsnn/internal/serve"
	"ndsnn/internal/tensor"
)

// ErrServerOverloaded is returned by Server.Infer/Classify when the
// admission queue is full — shed load or retry with backoff.
var ErrServerOverloaded = serve.ErrOverloaded

// ErrServerClosed is returned for requests submitted to a closed Server.
var ErrServerClosed = serve.ErrClosed

// ServingConfig tunes a model server. The zero value is usable: a float32
// engine with default batching, queue depth and worker count.
type ServingConfig struct {
	// Bits selects the engine precision: 0 compiles the float32 engine,
	// 2..16 the packed QCSR integer engine (see CompileQuantizedInference).
	Bits int
	// ActivationBits, when nonzero (2..16, requires Bits), also quantizes
	// activations onto power-of-two grids — the fully-integer serving path
	// (see CompileQuantizedInferenceConfig).
	ActivationBits int
	// FullInteger makes the integer claim a compile-time guarantee:
	// CompileServer fails if any compute stage would still run float
	// synaptic arithmetic. Implies ActivationBits=8 when unset.
	FullInteger bool
	// MaxBatch caps how many queued single-sample requests coalesce into one
	// batched engine pass. 1 disables coalescing. Default 8.
	MaxBatch int
	// Linger is how long a dispatcher holds an underfull batch open waiting
	// for more requests. 0 (default) dispatches whatever the queue holds.
	Linger time.Duration
	// MaxQueue bounds the admission queue; submissions beyond it fast-fail
	// with ErrServerOverloaded. Default 4×MaxBatch.
	MaxQueue int
	// Workers is the number of dispatcher goroutines. Default GOMAXPROCS.
	Workers int
	// Metrics enables telemetry: request latency histograms, admission
	// counters, per-stage engine timings and sampled request traces, all
	// readable via Server.Metrics and Server.MetricsHandler. Off (false) by
	// default — the hot path then carries no clock reads.
	Metrics bool
	// TraceEvery samples full request traces when Metrics is on: one batch
	// in TraceEvery gets a span breakdown (queue wait, assembly, per-stage
	// compute, requantization). 0 defaults to 8; negative disables tracing.
	TraceEvery int
}

// ServingStats is a snapshot of a server's counters.
type ServingStats struct {
	Served          int64 // requests answered with scores
	Rejected        int64 // fast-failed with ErrServerOverloaded
	ExpiredInQueue  int64 // dropped at dispatch on an already-done context
	ExpiredInFlight int64 // context expired mid-batch; computed result discarded
	Batches         int64 // coalesced engine passes
	BatchedSamples  int64 // samples those passes carried
	MeanBatch       float64
}

// Expired returns all deadline-expired requests, wherever the deadline
// caught them.
func (s ServingStats) Expired() int64 { return s.ExpiredInQueue + s.ExpiredInFlight }

// Server is a multi-tenant serving handle over one compiled event-driven
// engine: any number of goroutines may call Infer/Classify concurrently;
// requests queued together coalesce into one batched engine pass. Outputs
// are bit-identical to the serial single-caller engine.
type Server struct {
	srv *serve.Server
	reg *obs.Registry // nil unless ServingConfig.Metrics
}

// CompileServer compiles the trained model into an event-driven engine
// (float32 or QCSR integer, per cfg.Bits) and starts a serving layer over
// it. Close the server to release its dispatchers.
func (m *Model) CompileServer(cfg ServingConfig) (*Server, error) {
	var (
		eng *infer.Engine
		err error
	)
	if cfg.Bits == 0 {
		eng, err = infer.Compile(m.net)
	} else {
		eng, err = infer.CompileQuantizedConfig(m.net, infer.QuantConfig{
			WeightBits:     cfg.Bits,
			ActivationBits: cfg.ActivationBits,
			FullInteger:    cfg.FullInteger,
		})
	}
	if err != nil {
		return nil, err
	}
	var reg *obs.Registry
	if cfg.Metrics {
		reg = obs.New()
		eng.EnableTelemetry(reg, cfg.TraceEvery)
	}
	srv := serve.New(eng, serve.Config{
		MaxBatch:   cfg.MaxBatch,
		Linger:     cfg.Linger,
		MaxQueue:   cfg.MaxQueue,
		Workers:    cfg.Workers,
		Metrics:    reg,
		TraceEvery: cfg.TraceEvery,
	})
	return &Server{srv: srv, reg: reg}, nil
}

// Infer submits one sample image laid out [C,H,W] and blocks until its class
// scores are ready, ctx expires, or admission fast-fails. Safe for
// concurrent use; the returned slice is owned by the caller.
func (s *Server) Infer(ctx context.Context, sample []float32, c, h, w int) ([]float32, error) {
	return s.srv.Infer(ctx, tensor.FromSlice(sample, c, h, w))
}

// Classify submits one sample image laid out [C,H,W] and returns its
// predicted class.
func (s *Server) Classify(ctx context.Context, sample []float32, c, h, w int) (int, error) {
	return s.srv.Classify(ctx, tensor.FromSlice(sample, c, h, w))
}

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() ServingStats {
	st := s.srv.Stats()
	return ServingStats{
		Served:          st.Served,
		Rejected:        st.Rejected,
		ExpiredInQueue:  st.ExpiredInQueue,
		ExpiredInFlight: st.ExpiredInFlight,
		Batches:         st.Batches,
		BatchedSamples:  st.BatchedSamples,
		MeanBatch:       st.MeanBatch(),
	}
}

// Metrics returns a typed snapshot of the server's telemetry: latency and
// batch-size histograms with p50/p90/p99, admission counters, per-stage
// engine timings and SynOps, and the most recent sampled request traces.
// Empty unless the server was built with ServingConfig.Metrics.
func (s *Server) Metrics() MetricsSnapshot { return s.reg.Snapshot() }

// MetricsHandler returns an http.Handler exposing the server's telemetry:
// Prometheus text format at "/" and "/metrics", the typed JSON snapshot at
// "/metrics.json" (the endpoint `ndsnn-inspect metrics` reads). The caller
// decides whether and where to mount it — the server never opens sockets on
// its own. Serves 404s unless the server was built with
// ServingConfig.Metrics.
func (s *Server) MetricsHandler() http.Handler { return obs.Handler(s.reg) }

// Close stops admission, waits for in-flight batches, and fails still-queued
// requests with ErrServerClosed. Idempotent.
func (s *Server) Close() { s.srv.Close() }
