package ndsnn

import (
	"context"
	"time"

	"ndsnn/internal/infer"
	"ndsnn/internal/serve"
	"ndsnn/internal/tensor"
)

// ErrServerOverloaded is returned by Server.Infer/Classify when the
// admission queue is full — shed load or retry with backoff.
var ErrServerOverloaded = serve.ErrOverloaded

// ErrServerClosed is returned for requests submitted to a closed Server.
var ErrServerClosed = serve.ErrClosed

// ServingConfig tunes a model server. The zero value is usable: a float32
// engine with default batching, queue depth and worker count.
type ServingConfig struct {
	// Bits selects the engine precision: 0 compiles the float32 engine,
	// 2..16 the packed QCSR integer engine (see CompileQuantizedInference).
	Bits int
	// MaxBatch caps how many queued single-sample requests coalesce into one
	// batched engine pass. 1 disables coalescing. Default 8.
	MaxBatch int
	// Linger is how long a dispatcher holds an underfull batch open waiting
	// for more requests. 0 (default) dispatches whatever the queue holds.
	Linger time.Duration
	// MaxQueue bounds the admission queue; submissions beyond it fast-fail
	// with ErrServerOverloaded. Default 4×MaxBatch.
	MaxQueue int
	// Workers is the number of dispatcher goroutines. Default GOMAXPROCS.
	Workers int
}

// ServingStats is a snapshot of a server's counters.
type ServingStats struct {
	Served         int64 // requests answered with scores
	Rejected       int64 // fast-failed with ErrServerOverloaded
	Expired        int64 // dropped at dispatch on an already-done context
	Batches        int64 // coalesced engine passes
	BatchedSamples int64 // samples those passes carried
	MeanBatch      float64
}

// Server is a multi-tenant serving handle over one compiled event-driven
// engine: any number of goroutines may call Infer/Classify concurrently;
// requests queued together coalesce into one batched engine pass. Outputs
// are bit-identical to the serial single-caller engine.
type Server struct {
	srv *serve.Server
}

// CompileServer compiles the trained model into an event-driven engine
// (float32 or QCSR integer, per cfg.Bits) and starts a serving layer over
// it. Close the server to release its dispatchers.
func (m *Model) CompileServer(cfg ServingConfig) (*Server, error) {
	var (
		eng *infer.Engine
		err error
	)
	if cfg.Bits == 0 {
		eng, err = infer.Compile(m.net)
	} else {
		eng, err = infer.CompileQuantized(m.net, cfg.Bits)
	}
	if err != nil {
		return nil, err
	}
	srv := serve.New(eng, serve.Config{
		MaxBatch: cfg.MaxBatch,
		Linger:   cfg.Linger,
		MaxQueue: cfg.MaxQueue,
		Workers:  cfg.Workers,
	})
	return &Server{srv: srv}, nil
}

// Infer submits one sample image laid out [C,H,W] and blocks until its class
// scores are ready, ctx expires, or admission fast-fails. Safe for
// concurrent use; the returned slice is owned by the caller.
func (s *Server) Infer(ctx context.Context, sample []float32, c, h, w int) ([]float32, error) {
	return s.srv.Infer(ctx, tensor.FromSlice(sample, c, h, w))
}

// Classify submits one sample image laid out [C,H,W] and returns its
// predicted class.
func (s *Server) Classify(ctx context.Context, sample []float32, c, h, w int) (int, error) {
	return s.srv.Classify(ctx, tensor.FromSlice(sample, c, h, w))
}

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() ServingStats {
	st := s.srv.Stats()
	return ServingStats{
		Served:         st.Served,
		Rejected:       st.Rejected,
		Expired:        st.Expired,
		Batches:        st.Batches,
		BatchedSamples: st.BatchedSamples,
		MeanBatch:      st.MeanBatch(),
	}
}

// Close stops admission, waits for in-flight batches, and fails still-queued
// requests with ErrServerClosed. Idempotent.
func (s *Server) Close() { s.srv.Close() }
