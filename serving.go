package ndsnn

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"ndsnn/internal/infer"
	"ndsnn/internal/obs"
	"ndsnn/internal/serve"
	"ndsnn/internal/tensor"
)

// ErrServerOverloaded is returned by Server.Infer/Classify when the
// admission queue is full, or when adaptive shedding predicts the request
// would miss its deadline waiting — shed load or retry with backoff
// (Server.InferRetry).
var ErrServerOverloaded = serve.ErrOverloaded

// ErrServerClosed is returned for requests submitted to a closed or draining
// Server.
var ErrServerClosed = serve.ErrClosed

// ErrServerInternal is returned to every request of a batch whose engine
// pass panicked. The failure is isolated to that batch — the server keeps
// serving, and the pass's scratch state is discarded, never reused.
var ErrServerInternal = serve.ErrInternal

// ErrServerBadRequest is returned for nil, empty or mis-shaped samples,
// refused at admission before the compiled engine could panic on them.
var ErrServerBadRequest = serve.ErrBadRequest

// RetryPolicy tunes Server.InferRetry's jittered exponential backoff. The
// zero value is usable (4 attempts, 1ms base doubling to a 128ms cap,
// seeded jitter).
type RetryPolicy = serve.RetryPolicy

// DrainResult reports how a Server.Drain ended: Clean when everything
// flushed before the context expired, otherwise the straggler count.
type DrainResult = serve.DrainResult

// ServingConfig tunes a model server. The zero value is usable: a float32
// engine with default batching, queue depth and worker count.
type ServingConfig struct {
	// Bits selects the engine precision: 0 compiles the float32 engine,
	// 2..16 the packed QCSR integer engine (see CompileQuantizedInference).
	Bits int
	// ActivationBits, when nonzero (2..16, requires Bits), also quantizes
	// activations onto power-of-two grids — the fully-integer serving path
	// (see CompileQuantizedInferenceConfig).
	ActivationBits int
	// FullInteger makes the integer claim a compile-time guarantee:
	// CompileServer fails if any compute stage would still run float
	// synaptic arithmetic. Implies ActivationBits=8 when unset.
	FullInteger bool
	// MaxBatch caps how many queued single-sample requests coalesce into one
	// batched engine pass. 1 disables coalescing. Default 8.
	MaxBatch int
	// Linger is how long a dispatcher holds an underfull batch open waiting
	// for more requests. 0 (default) dispatches whatever the queue holds.
	Linger time.Duration
	// MaxQueue bounds the admission queue; submissions beyond it fast-fail
	// with ErrServerOverloaded. Default 4×MaxBatch.
	MaxQueue int
	// Workers is the number of dispatcher goroutines. Default GOMAXPROCS.
	Workers int
	// AdaptiveShed enables deadline-aware admission shedding: the server
	// tracks an EWMA of realized queue wait and refuses requests whose
	// context deadline budget is below the predicted wait with
	// ErrServerOverloaded — before they cost queue space or compute that
	// would be wasted anyway. Requests without a deadline are never shed.
	AdaptiveShed bool
	// ShedAlpha is the queue-wait EWMA smoothing factor in (0,1]; larger
	// reacts faster. 0 defaults to 0.2.
	ShedAlpha float64
	// Metrics enables telemetry: request latency histograms, admission
	// counters, per-stage engine timings and sampled request traces, all
	// readable via Server.Metrics and Server.MetricsHandler. Off (false) by
	// default — the hot path then carries no clock reads.
	Metrics bool
	// TraceEvery samples full request traces when Metrics is on: one batch
	// in TraceEvery gets a span breakdown (queue wait, assembly, per-stage
	// compute, requantization). 0 defaults to 8; negative disables tracing.
	TraceEvery int
}

// ServingStats is a snapshot of a server's counters. Admitted requests
// resolve exactly once — Served, ExpiredInQueue, ExpiredInFlight or Failed —
// so after Close or Drain, Admitted == Resolved(). Refusals at admission
// (Rejected, Shed, Invalid) are never admitted.
type ServingStats struct {
	Admitted        int64 // requests accepted into the queue
	Served          int64 // requests answered with scores
	Rejected        int64 // fast-failed with ErrServerOverloaded (queue full)
	Shed            int64 // refused by adaptive shedding (also ErrServerOverloaded)
	Invalid         int64 // refused with ErrServerBadRequest
	ExpiredInQueue  int64 // dropped at dispatch on an already-done context
	ExpiredInFlight int64 // context expired mid-batch; computed result discarded
	Failed          int64 // resolved with ErrServerInternal or ErrServerClosed
	Panics          int64 // engine passes isolated after a panic
	Retries         int64 // backoff re-submissions through InferRetry
	Batches         int64 // coalesced engine passes
	BatchedSamples  int64 // samples those passes carried
	MeanBatch       float64
	DrainClean      int64 // drains that flushed everything
	DrainForced     int64 // drains cut short by their context
	DrainStragglers int64 // queued requests those drains failed
}

// Expired returns all deadline-expired requests, wherever the deadline
// caught them.
func (s ServingStats) Expired() int64 { return s.ExpiredInQueue + s.ExpiredInFlight }

// Resolved returns the admitted requests counted to a final outcome; equal
// to Admitted once the server has shut down.
func (s ServingStats) Resolved() int64 {
	return s.Served + s.ExpiredInQueue + s.ExpiredInFlight + s.Failed
}

// Server is a multi-tenant serving handle over one compiled event-driven
// engine: any number of goroutines may call Infer/Classify concurrently;
// requests queued together coalesce into one batched engine pass. Outputs
// are bit-identical to the serial single-caller engine.
type Server struct {
	srv *serve.Server
	reg *obs.Registry // nil unless ServingConfig.Metrics
}

// CompileServer compiles the trained model into an event-driven engine
// (float32 or QCSR integer, per cfg.Bits) and starts a serving layer over
// it. Close the server to release its dispatchers.
func (m *Model) CompileServer(cfg ServingConfig) (*Server, error) {
	var (
		eng *infer.Engine
		err error
	)
	if cfg.Bits == 0 {
		eng, err = infer.Compile(m.net)
	} else {
		eng, err = infer.CompileQuantizedConfig(m.net, infer.QuantConfig{
			WeightBits:     cfg.Bits,
			ActivationBits: cfg.ActivationBits,
			FullInteger:    cfg.FullInteger,
		})
	}
	if err != nil {
		return nil, err
	}
	var reg *obs.Registry
	if cfg.Metrics {
		reg = obs.New()
		eng.EnableTelemetry(reg, cfg.TraceEvery)
	}
	// Admission validates against the model's native sample shape, so caller
	// mistakes fail with ErrServerBadRequest instead of panicking the engine.
	var inputShape []int
	if m.dataset != nil {
		inputShape = []int{m.dataset.Config.C, m.dataset.Config.H, m.dataset.Config.W}
	}
	srv := serve.New(eng, serve.Config{
		MaxBatch:     cfg.MaxBatch,
		Linger:       cfg.Linger,
		MaxQueue:     cfg.MaxQueue,
		Workers:      cfg.Workers,
		InputShape:   inputShape,
		AdaptiveShed: cfg.AdaptiveShed,
		ShedAlpha:    cfg.ShedAlpha,
		Metrics:      reg,
		TraceEvery:   cfg.TraceEvery,
	})
	return &Server{srv: srv, reg: reg}, nil
}

// sampleTensor validates a caller's raw sample against its declared shape
// and wraps it without copying. Mismatches are ErrServerBadRequest — the
// serving boundary never panics on caller mistakes.
func sampleTensor(sample []float32, c, h, w int) (*tensor.Tensor, error) {
	if c <= 0 || h <= 0 || w <= 0 {
		return nil, fmt.Errorf("%w: non-positive shape [%d,%d,%d]", serve.ErrBadRequest, c, h, w)
	}
	if len(sample) != c*h*w {
		return nil, fmt.Errorf("%w: %d values for shape [%d,%d,%d] (%d elements)", serve.ErrBadRequest, len(sample), c, h, w, c*h*w)
	}
	return tensor.FromSlice(sample, c, h, w), nil
}

// Infer submits one sample image laid out [C,H,W] and blocks until its class
// scores are ready, ctx expires, or admission fast-fails. Safe for
// concurrent use; the returned slice is owned by the caller.
func (s *Server) Infer(ctx context.Context, sample []float32, c, h, w int) ([]float32, error) {
	t, err := sampleTensor(sample, c, h, w)
	if err != nil {
		return nil, err
	}
	return s.srv.Infer(ctx, t)
}

// Classify submits one sample image laid out [C,H,W] and returns its
// predicted class.
func (s *Server) Classify(ctx context.Context, sample []float32, c, h, w int) (int, error) {
	t, err := sampleTensor(sample, c, h, w)
	if err != nil {
		return 0, err
	}
	return s.srv.Classify(ctx, t)
}

// InferRetry is Infer with jittered-exponential-backoff retry on overload:
// shed or queue-full submissions are re-tried per policy (and counted in
// ServingStats.Retries); every other outcome passes straight through. The
// context bounds the whole loop, backoff sleeps included.
func (s *Server) InferRetry(ctx context.Context, p RetryPolicy, sample []float32, c, h, w int) ([]float32, error) {
	t, err := sampleTensor(sample, c, h, w)
	if err != nil {
		return nil, err
	}
	return s.srv.InferRetry(ctx, p, t)
}

// Healthy reports whether the server is accepting requests: true until Close
// or Drain stops admission — the readiness signal a load balancer should
// poll (also exported as the serve_healthy gauge when Metrics is on).
func (s *Server) Healthy() bool { return s.srv.Healthy() }

// Drain gracefully shuts the server down: admission stops immediately,
// queued and in-flight work keeps flushing until everything has resolved or
// ctx expires, and only then are stragglers failed with ErrServerClosed.
// Idempotent with itself and with Close.
func (s *Server) Drain(ctx context.Context) DrainResult { return s.srv.Drain(ctx) }

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() ServingStats {
	st := s.srv.Stats()
	return ServingStats{
		Admitted:        st.Admitted,
		Served:          st.Served,
		Rejected:        st.Rejected,
		Shed:            st.Shed,
		Invalid:         st.Invalid,
		ExpiredInQueue:  st.ExpiredInQueue,
		ExpiredInFlight: st.ExpiredInFlight,
		Failed:          st.Failed,
		Panics:          st.Panics,
		Retries:         st.Retries,
		Batches:         st.Batches,
		BatchedSamples:  st.BatchedSamples,
		MeanBatch:       st.MeanBatch(),
		DrainClean:      st.DrainClean,
		DrainForced:     st.DrainForced,
		DrainStragglers: st.DrainStragglers,
	}
}

// Metrics returns a typed snapshot of the server's telemetry: latency and
// batch-size histograms with p50/p90/p99, admission counters, per-stage
// engine timings and SynOps, and the most recent sampled request traces.
// Empty unless the server was built with ServingConfig.Metrics.
func (s *Server) Metrics() MetricsSnapshot { return s.reg.Snapshot() }

// MetricsHandler returns an http.Handler exposing the server's telemetry:
// Prometheus text format at "/" and "/metrics", the typed JSON snapshot at
// "/metrics.json" (the endpoint `ndsnn-inspect metrics` reads). The caller
// decides whether and where to mount it — the server never opens sockets on
// its own. Serves 404s unless the server was built with
// ServingConfig.Metrics.
func (s *Server) MetricsHandler() http.Handler { return obs.Handler(s.reg) }

// Close stops admission, waits for in-flight batches, and fails still-queued
// requests with ErrServerClosed. Idempotent.
func (s *Server) Close() { s.srv.Close() }
