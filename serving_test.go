package ndsnn

import (
	"context"
	"sync"
	"testing"
)

// TestCompileServerBitIdentical pins the public serving facade: concurrent
// Classify calls through a coalescing server must agree exactly with the
// serial single-caller engine, for the float and int8 engines alike.
func TestCompileServerBitIdentical(t *testing.T) {
	m, _, err := TrainModel(unitCfg(NDSNN, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		bits int
		full bool
	}{
		{"float32", 0, false}, {"int8", 8, false}, {"fullint8", 8, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var eng *InferenceEngine
			switch {
			case tc.bits == 0:
				eng, err = m.CompileInference()
			case tc.full:
				eng, err = m.CompileQuantizedInferenceConfig(QuantizedInferenceConfig{WeightBits: tc.bits, FullInteger: true})
			default:
				eng, err = m.CompileQuantizedInference(tc.bits)
			}
			if err != nil {
				t.Fatal(err)
			}
			if tc.full {
				if qi := eng.QuantInfo(); qi == nil || qi.AnalogStages != 0 {
					t.Fatalf("served full-integer engine still has analog stages: %+v", qi)
				}
			}
			srv, err := m.CompileServer(ServingConfig{Bits: tc.bits, FullInteger: tc.full, MaxBatch: 4, MaxQueue: 64})
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()

			n := eng.TestLen()
			if n > 12 {
				n = 12
			}
			want := make([]int, n)
			for i := 0; i < n; i++ {
				img, c, h, w, _ := eng.TestSample(i)
				want[i] = eng.Classify(img, c, h, w)
			}
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					img, c, h, w, _ := eng.TestSample(i)
					got, err := srv.Classify(context.Background(), img, c, h, w)
					if err != nil {
						t.Error(err)
						return
					}
					if got != want[i] {
						t.Errorf("sample %d: served class %d, serial class %d", i, got, want[i])
					}
				}(i)
			}
			wg.Wait()
			st := srv.Stats()
			if st.Served != int64(n) || st.Batches == 0 || st.MeanBatch < 1 {
				t.Fatalf("serving stats: %+v", st)
			}
		})
	}
}
