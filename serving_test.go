package ndsnn

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestCompileServerBitIdentical pins the public serving facade: concurrent
// Classify calls through a coalescing server must agree exactly with the
// serial single-caller engine, for the float and int8 engines alike.
func TestCompileServerBitIdentical(t *testing.T) {
	m, _, err := TrainModel(unitCfg(NDSNN, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		bits int
		full bool
	}{
		{"float32", 0, false}, {"int8", 8, false}, {"fullint8", 8, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var eng *InferenceEngine
			switch {
			case tc.bits == 0:
				eng, err = m.CompileInference()
			case tc.full:
				eng, err = m.CompileQuantizedInferenceConfig(QuantizedInferenceConfig{WeightBits: tc.bits, FullInteger: true})
			default:
				eng, err = m.CompileQuantizedInference(tc.bits)
			}
			if err != nil {
				t.Fatal(err)
			}
			if tc.full {
				if qi := eng.QuantInfo(); qi == nil || qi.AnalogStages != 0 {
					t.Fatalf("served full-integer engine still has analog stages: %+v", qi)
				}
			}
			srv, err := m.CompileServer(ServingConfig{Bits: tc.bits, FullInteger: tc.full, MaxBatch: 4, MaxQueue: 64})
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()

			n := eng.TestLen()
			if n > 12 {
				n = 12
			}
			want := make([]int, n)
			for i := 0; i < n; i++ {
				img, c, h, w, _ := eng.TestSample(i)
				want[i] = eng.Classify(img, c, h, w)
			}
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					img, c, h, w, _ := eng.TestSample(i)
					got, err := srv.Classify(context.Background(), img, c, h, w)
					if err != nil {
						t.Error(err)
						return
					}
					if got != want[i] {
						t.Errorf("sample %d: served class %d, serial class %d", i, got, want[i])
					}
				}(i)
			}
			wg.Wait()
			st := srv.Stats()
			if st.Served != int64(n) || st.Batches == 0 || st.MeanBatch < 1 {
				t.Fatalf("serving stats: %+v", st)
			}
		})
	}
}

// TestServerResilienceFacade pins the public failure-model surface in one
// training run: input validation, health/readiness, graceful drain, retry
// passthrough, the conservation law on the exported stats, and the typed
// checkpoint errors.
func TestServerResilienceFacade(t *testing.T) {
	m, _, err := TrainModel(unitCfg(NDSNN, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := m.CompileServer(ServingConfig{MaxBatch: 4, MaxQueue: 64, AdaptiveShed: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	if !srv.Healthy() {
		t.Fatal("fresh server not healthy")
	}

	// Mis-shaped and nil samples are refused with the typed error before the
	// engine sees them.
	if _, err := srv.Infer(ctx, nil, 3, 32, 32); !errors.Is(err, ErrServerBadRequest) {
		t.Fatalf("nil sample: got %v, want ErrServerBadRequest", err)
	}
	// Self-consistent slice/shape pair that mismatches the model's native
	// input (unit-scale cifar10 is 3×16×16): refused by admission validation.
	if _, err := srv.Infer(ctx, make([]float32, 3*8*8), 3, 8, 8); !errors.Is(err, ErrServerBadRequest) {
		t.Fatalf("wrong-shape sample: got %v, want ErrServerBadRequest", err)
	}

	// Serve a few requests, one through the retry helper.
	eng, err := m.CompileInference()
	if err != nil {
		t.Fatal(err)
	}
	img, c, h, w, _ := eng.TestSample(0)
	want := eng.Classify(img, c, h, w)
	scores, err := srv.InferRetry(ctx, RetryPolicy{}, img, c, h, w)
	if err != nil {
		t.Fatal(err)
	}
	got, best := 0, scores[0]
	for i, v := range scores[1:] {
		if v > best {
			best, got = v, i+1
		}
	}
	if got != want {
		t.Fatalf("retried classify: served %d, serial %d", got, want)
	}

	// Drain flushes cleanly, flips readiness, and the conservation law holds
	// on the exported stats.
	dctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if res := srv.Drain(dctx); !res.Clean {
		t.Fatalf("drain: %+v", res)
	}
	if srv.Healthy() {
		t.Fatal("drained server still healthy")
	}
	if _, err := srv.Infer(ctx, img, c, h, w); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("post-drain submit: got %v, want ErrServerClosed", err)
	}
	st := srv.Stats()
	// The nil sample was refused by the facade's own shape check (before the
	// serve layer), the mis-shaped one by admission validation — so exactly
	// one lands in the server's Invalid counter.
	if st.Invalid != 1 || st.Served != 1 || st.Resolved() != st.Admitted || st.DrainClean != 1 {
		t.Fatalf("facade stats: %+v", st)
	}
	srv.Close() // idempotent after drain

	// Checkpoint integrity surfaces through the facade: a truncated file is
	// rejected with the typed error, never silently loaded.
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ckpt")
	if err := m.SaveCheckpoint(path, unitCfg(NDSNN, 0.9)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := InspectCheckpoint(path); !errors.Is(err, ErrCheckpointTruncated) {
		t.Fatalf("truncated checkpoint: got %v, want ErrCheckpointTruncated", err)
	}
}
