package ndsnn

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunExperimentSynOpsUnit(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiment("synops", &buf, ExperimentOptions{Scale: "unit"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "synops/sample") {
		t.Fatalf("synops output:\n%s", out)
	}
}

func TestInferenceEngineFacade(t *testing.T) {
	m, res, err := TrainModel(Config{Method: NDSNN, Arch: "lenet5", Dataset: "cifar10", Sparsity: 0.9, Scale: "unit", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := m.CompileInference()
	if err != nil {
		t.Fatal(err)
	}
	acc, synOps, denseMACs := eng.EvaluateTest(0)
	// Engine accuracy must match the training path's evaluation exactly
	// (same eval-mode semantics).
	if acc != res.TestAccuracy {
		t.Fatalf("engine acc %v != training-path acc %v", acc, res.TestAccuracy)
	}
	if synOps <= 0 || denseMACs <= 0 || synOps >= denseMACs {
		t.Fatalf("synops=%v denseMACs=%v", synOps, denseMACs)
	}
	img, c, h, w, label := eng.TestSample(0)
	pred := eng.Classify(img, c, h, w)
	if pred < 0 || label < 0 || eng.TestLen() == 0 {
		t.Fatal("sample accessors broken")
	}
}
