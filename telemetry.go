package ndsnn

import "ndsnn/internal/obs"

// Telemetry facade: the public names for the internal/obs snapshot types, so
// callers can consume Server.Metrics() / Model.Telemetry() without importing
// internal packages.

// MetricsSnapshot is a typed point-in-time view of a telemetry registry:
// finalized latency histograms (p50/p90/p99/max/mean), counters, gauges and
// the most recent sampled request traces. Obtain one from Server.Metrics
// (serving path) or Model.Telemetry (training path).
type MetricsSnapshot = obs.Snapshot

// HistogramSnapshot is one histogram in a MetricsSnapshot: a log-bucketed
// latency/size distribution with quantiles exact to the bucket resolution
// (≤6.25% relative error).
type HistogramSnapshot = obs.HistSnapshot

// MetricValue is one counter or gauge sample in a MetricsSnapshot.
type MetricValue = obs.MetricValue

// RequestTrace is one sampled request's span breakdown from the trace ring:
// for a served request, queue wait → batch assembly → per-stage compute (with
// a requantization overlay on integer engines).
type RequestTrace = obs.Trace

// TraceSpan is one timed segment of a RequestTrace, in nanoseconds relative
// to the trace start.
type TraceSpan = obs.Span

// Telemetry returns the training-path metrics recorded while this model
// trained: per-batch phase latency histograms (data/forward/backward/optim),
// whole-epoch timings, BPTT-tape memory gauges and kernel worker-pool
// utilization. Empty unless the model was trained with Config.Metrics.
//
// The tape and pool gauges are sampled live at the time of the call, so a
// snapshot taken while another run is training reflects that run's current
// memory/pool state; the histograms are this model's own.
func (m *Model) Telemetry() MetricsSnapshot { return m.reg.Snapshot() }
